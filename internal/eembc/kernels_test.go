package eembc

import (
	"strings"
	"testing"

	"hetsched/internal/isa"
	"hetsched/internal/vm"
)

// Behavioural checks: beyond "runs to completion", the kernels must do what
// their EEMBC archetypes do — these tests pin the properties the cache
// behaviour depends on.

func record(t *testing.T, name string, p Params) (vm.Counters, *vm.Trace) {
	t.Helper()
	k, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctr, tr, err := Record(k, p)
	if err != nil {
		t.Fatal(err)
	}
	return ctr, tr
}

func TestPntrchVisitsEveryNode(t *testing.T) {
	// The pointer chase is a single cycle over all nodes: within one outer
	// iteration of >= nodes steps, every node must be touched.
	_, tr := record(t, "pntrch", Params{Scale: 1, Iterations: 1, Seed: 1})
	const nodes = 384
	seen := map[uint64]bool{}
	for _, a := range tr.Accesses {
		seen[a.Addr/16] = true // node index
	}
	if len(seen) < nodes {
		t.Errorf("pointer chase visited %d nodes, want all %d", len(seen), nodes)
	}
}

func TestPntrchIsLoadOnly(t *testing.T) {
	_, tr := record(t, "pntrch", DefaultParams())
	if tr.Writes() != 0 {
		t.Errorf("pointer chase issued %d writes", tr.Writes())
	}
}

func TestCachebTouchesWholeArray(t *testing.T) {
	// The cache buster's stride walk must scatter across (nearly) the full
	// 24 KB array, not orbit a small cycle.
	_, tr := record(t, "cacheb", DefaultParams())
	footprint := tr.Footprint(64) * 64
	if footprint < 20*1024 {
		t.Errorf("cache buster footprint %d bytes; want most of 24 KB", footprint)
	}
}

func TestCanrdrAcceptanceBand(t *testing.T) {
	// The CAN filter accepts ids with (id & 0x70) == 0x20 — 1/8 of random
	// ids. The store count (one status byte per accepted message) must sit
	// near that band.
	ctr, _ := record(t, "canrdr", Params{Scale: 1, Iterations: 1, Seed: 1})
	msgs := uint64(192 * 2) // iterations*2 outer passes at Iterations=1
	accepted := ctr.Stores
	lo, hi := msgs/16, msgs/3
	if accepted < lo || accepted > hi {
		t.Errorf("canrdr accepted %d of %d messages; expected roughly 1/8", accepted, msgs)
	}
}

func TestMatrixComputesRealProduct(t *testing.T) {
	// Spot-check C[0][0] = sum_k A[0][k]*B[k][0] by reconstructing the
	// inputs and reading back the VM's memory.
	k, err := ByName("matrix")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 1, Seed: 1}
	prog, err := k.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(k.MemBytes(p), nil)
	if err := k.Init(machine, p); err != nil {
		t.Fatal(err)
	}
	const dim = 16
	var want float64
	for kk := 0; kk < dim; kk++ {
		a, err := machine.PeekFloat(uint64((0*dim + kk) * 8))
		if err != nil {
			t.Fatal(err)
		}
		b, err := machine.PeekFloat(uint64(dim*dim*8 + (kk*dim+0)*8))
		if err != nil {
			t.Fatal(err)
		}
		want += a * b
	}
	if _, err := machine.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	got, err := machine.PeekFloat(uint64(2 * dim * dim * 8))
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("C[0][0] = %v, want %v", got, want)
	}
}

func TestFFTValuesStayBounded(t *testing.T) {
	// The damped butterflies must keep every complex point finite and
	// modest across many outer iterations.
	k, err := ByName("aifftr")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 16, Seed: 2}
	prog, err := k.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(k.MemBytes(p), nil)
	if err := k.Init(machine, p); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128*2; i++ {
		v, err := machine.PeekFloat(uint64(i * 8))
		if err != nil {
			t.Fatal(err)
		}
		if v != v || v > 1e6 || v < -1e6 {
			t.Fatalf("fft point %d diverged to %v", i, v)
		}
	}
}

func TestIirfltProducesOutput(t *testing.T) {
	// The cascade must write a full output signal with non-trivial values.
	k, err := ByName("iirflt")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 1, Seed: 1}
	prog, err := k.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(k.MemBytes(p), nil)
	if err := k.Init(machine, p); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	const samples = 448
	outBase := uint64(2*7*8 + samples*8) // sections*7 floats + input
	nonZero := 0
	for i := 0; i < samples; i++ {
		v, err := machine.PeekFloat(outBase + uint64(i*8))
		if err != nil {
			t.Fatal(err)
		}
		if v != v {
			t.Fatalf("output sample %d is NaN", i)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < samples/2 {
		t.Errorf("only %d of %d output samples non-zero", nonZero, samples)
	}
}

func TestKernelsRespectMemBounds(t *testing.T) {
	// MemBytes must be an honest upper bound: every access must fall
	// inside the declared memory size (the VM would error otherwise, but
	// verify the trace explicitly, including at a larger scale).
	for _, k := range Suite() {
		p := Params{Scale: 2, Iterations: 1, Seed: 3}
		limit := uint64(k.MemBytes(p))
		_, tr, err := Record(k, p)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, a := range tr.Accesses {
			if a.Addr >= limit {
				t.Fatalf("%s: access at %#x beyond declared %#x", k.Name, a.Addr, limit)
			}
		}
	}
}

func TestKernelProgramsDisassemble(t *testing.T) {
	// Every kernel must disassemble without unknown opcodes — a smoke test
	// for the program builder output.
	for _, k := range Suite() {
		prog, err := k.Program(DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		dis := prog.Disassemble()
		if strings.Contains(dis, "op(") {
			t.Errorf("%s: disassembly contains unknown opcodes", k.Name)
		}
		if !strings.Contains(dis, "halt") {
			t.Errorf("%s: program has no halt", k.Name)
		}
	}
}

// Golden structural test for one kernel prologue: pins the builder output
// so accidental instruction reordering is caught.
func TestA2timePrologueGolden(t *testing.T) {
	k, err := ByName("a2time")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Program(Params{Scale: 1, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.LI, isa.LI, isa.LI, isa.LI, isa.LI, isa.BEQ, isa.LI, isa.LI}
	if len(prog.Instrs) < len(want) {
		t.Fatalf("program too short: %d instrs", len(prog.Instrs))
	}
	for i, op := range want {
		if prog.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v\n%s", i, prog.Instrs[i].Op, op, prog.Disassemble())
			break
		}
	}
}
