package eembc

import (
	"testing"
)

// TestRecordTraceSizedFromMemOps: the recorded access count equals the
// Loads+Stores counters (the invariant the memoized preallocation relies
// on), and a repeated recording of the same variant comes back with its
// buffer sized exactly — no append growth left over.
func TestRecordTraceSizedFromMemOps(t *testing.T) {
	k, err := ByName("a2time")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 2, Seed: 9}

	ctr, tr, err := Record(k, p)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(tr.Len()) != ctr.MemOps() {
		t.Fatalf("trace length %d != MemOps %d", tr.Len(), ctr.MemOps())
	}

	// Second run: memoized count -> exact capacity.
	_, tr2, err := Record(k, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Accesses) != cap(tr2.Accesses) {
		t.Errorf("warm Record: len %d != cap %d (buffer not exactly presized)",
			len(tr2.Accesses), cap(tr2.Accesses))
	}

	ctrF, ft, err := RecordFlat(k, p)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(ft.Len()) != ctrF.MemOps() {
		t.Fatalf("flat trace length %d != MemOps %d", ft.Len(), ctrF.MemOps())
	}
	if len(ft.Packed) != cap(ft.Packed) {
		t.Errorf("warm RecordFlat: len %d != cap %d", len(ft.Packed), cap(ft.Packed))
	}
}

// TestRecordFlatMatchesRecord: both representations record the same stream
// and the same counters.
func TestRecordFlatMatchesRecord(t *testing.T) {
	k, err := ByName("cacheb")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 2, Seed: 3}
	ctrA, tr, err := Record(k, p)
	if err != nil {
		t.Fatal(err)
	}
	ctrB, ft, err := RecordFlat(k, p)
	if err != nil {
		t.Fatal(err)
	}
	if ctrA != ctrB {
		t.Fatalf("counters differ:\n %+v\n %+v", ctrA, ctrB)
	}
	if ft.Len() != tr.Len() {
		t.Fatalf("lengths differ: flat %d, structured %d", ft.Len(), tr.Len())
	}
	for i, a := range tr.Accesses {
		addr := ft.Packed[i] >> 1
		write := ft.Packed[i]&1 == 1
		if addr != a.Addr || write != a.Write {
			t.Fatalf("access %d: flat (%#x,%v), structured (%#x,%v)", i, addr, write, a.Addr, a.Write)
		}
	}
}

// TestRecordAllocsSteadyState: with the memo warm, recording allocates a
// constant number of times regardless of trace length — i.e. the trace
// buffer is one allocation, not a growth series. Recording at 4 iterations
// and at 16 must cost the same allocation count.
func TestRecordAllocsSteadyState(t *testing.T) {
	k, err := ByName("tblook")
	if err != nil {
		t.Fatal(err)
	}
	allocsFor := func(p Params) float64 {
		if _, _, err := RecordFlat(k, p); err != nil { // warm the memo
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if _, _, err := RecordFlat(k, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := allocsFor(Params{Scale: 1, Iterations: 4, Seed: 5})
	long := allocsFor(Params{Scale: 1, Iterations: 16, Seed: 5})
	if short != long {
		t.Errorf("allocs grew with trace length: %.0f at 4 iterations, %.0f at 16 (append growth not eliminated)", short, long)
	}
}

// BenchmarkRecordTrace reports the record-time allocation profile for both
// representations with a warm memo (the steady state of every
// characterization run after the first).
func BenchmarkRecordTrace(b *testing.B) {
	k, err := ByName("a2time")
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.Run("structured", func(b *testing.B) {
		if _, _, err := Record(k, p); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Record(k, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		if _, _, err := RecordFlat(k, p); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := RecordFlat(k, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
