package eembc

import (
	"hetsched/internal/isa"
	"hetsched/internal/vm"
)

// Telecom kernels. The paper evaluates "the complete EEMBC suite"; the
// canonical 16-kernel automotive group (Suite) drives the headline
// experiments, and this TelecomSuite provides a second application domain
// for the multi-domain discussion of Section IV.D ("the scheduler could
// have multiple ANNs each of which would be specialized for a different
// domain"). The kernels follow the EEMBC telecom benchmarks they emulate:
// autocorrelation, convolutional encoding, bit allocation and Viterbi
// decoding.

// TelecomSuite returns the four telecom kernels in canonical order.
func TelecomSuite() []Kernel {
	return []Kernel{autcor(), conven(), fbital(), viterb()}
}

// AllKernels returns the automotive and telecom kernels.
func AllKernels() []Kernel {
	return append(Suite(), TelecomSuite()...)
}

// autcor emulates EEMBC autcor00: fixed-lag autocorrelation of a signal.
// Each lag is one sequential pass over a 3 KB float signal offset against
// itself — heavy reuse, 4 KB-cache shaped.
func autcor() Kernel {
	samples := func(p Params) int { return 384 * p.Scale }
	const lags = 24
	return Kernel{
		Name:        "autcor",
		Description: "autocorrelation over a 3 KB signal, 24 lags",
		MemBytes: func(p Params) int {
			return samples(p)*8 + lags*8 + 64
		},
		Program: func(p Params) (*isa.Program, error) {
			n := int64(samples(p))
			sigBase := int64(0)
			outBase := n * 8
			b := isa.NewBuilder("autcor").
				Li(isa.R10, sigBase).
				Li(isa.R11, outBase).
				Li(isa.R14, lags).
				Li(isa.R15, n).
				Li(isa.R9, int64(p.Iterations)).
				Label("outer").
				Beq(isa.R9, isa.R0, "done").
				Li(isa.R1, 0). // lag k
				Label("lagloop").
				Bge(isa.R1, isa.R14, "outer_next").
				Fsub(isa.F5, isa.F5, isa.F5). // acc = 0
				Sub(isa.R2, isa.R15, isa.R1). // bound = n - k
				Li(isa.R3, 0).                // i
				Label("dot").
				Bge(isa.R3, isa.R2, "dotdone").
				Shli(isa.R4, isa.R3, 3).
				Add(isa.R4, isa.R4, isa.R10).
				Flw(isa.F1, isa.R4, 0). // x[i]
				Add(isa.R5, isa.R3, isa.R1).
				Shli(isa.R5, isa.R5, 3).
				Add(isa.R5, isa.R5, isa.R10).
				Flw(isa.F2, isa.R5, 0). // x[i+k]
				Fmul(isa.F3, isa.F1, isa.F2).
				Fadd(isa.F5, isa.F5, isa.F3).
				Addi(isa.R3, isa.R3, 1).
				Jmp("dot").
				Label("dotdone").
				Shli(isa.R4, isa.R1, 3).
				Add(isa.R4, isa.R4, isa.R11).
				Fsw(isa.F5, isa.R4, 0). // out[k]
				Addi(isa.R1, isa.R1, 1).
				Jmp("lagloop").
				Label("outer_next").
				Addi(isa.R9, isa.R9, -1).
				Jmp("outer").
				Label("done").
				Halt()
			return b.Build()
		},
		Init: func(v *vm.VM, p Params) error {
			r := rng("autcor", p)
			return pokeFloats(v, 0, samples(p), func(i int) float64 {
				return r.Float64()*2 - 1
			})
		},
	}
}

// conven emulates EEMBC conven00: a rate-1/2 K=7 convolutional encoder.
// Input bits stream from a packed word array; each bit updates a shift
// register and two generator parities via a 256-entry parity lookup table.
// Tiny hot set — a 2 KB kernel.
func conven() Kernel {
	words := func(p Params) int { return 256 * p.Scale } // 32 bits each
	const parityBase = 0                                 // 256-byte table
	return Kernel{
		Name:        "conven",
		Description: "K=7 rate-1/2 convolutional encoder with parity LUT",
		MemBytes: func(p Params) int {
			return 256 + words(p)*4 + words(p)*8 + 64
		},
		Program: func(p Params) (*isa.Program, error) {
			n := int64(words(p))
			inBase := int64(256)
			outBase := inBase + n*4
			b := isa.NewBuilder("conven").
				Li(isa.R10, parityBase).
				Li(isa.R11, inBase).
				Li(isa.R12, outBase).
				Li(isa.R15, n).
				Li(isa.R20, 0). // shift register
				Li(isa.R9, int64(p.Iterations*2)).
				Label("outer").
				Beq(isa.R9, isa.R0, "done").
				Li(isa.R1, 0). // word index
				Label("wloop").
				Bge(isa.R1, isa.R15, "outer_next").
				Shli(isa.R4, isa.R1, 2).
				Add(isa.R4, isa.R4, isa.R11).
				Lw(isa.R5, isa.R4, 0). // input word
				Li(isa.R2, 0).         // bit index
				Li(isa.R21, 0).        // encoded output accumulator
				Label("bits").
				Li(isa.R6, 32).
				Bge(isa.R2, isa.R6, "bitsdone").
				// shift in next input bit
				Andi(isa.R6, isa.R5, 1).
				Shri(isa.R5, isa.R5, 1).
				Shli(isa.R20, isa.R20, 1).
				Or(isa.R20, isa.R20, isa.R6).
				Andi(isa.R20, isa.R20, 127). // K=7 window
				// generator 0o171: parity of (sr & 0x79)
				Andi(isa.R6, isa.R20, 0x79).
				Add(isa.R6, isa.R6, isa.R10).
				Lb(isa.R7, isa.R6, 0).
				Shli(isa.R21, isa.R21, 1).
				Or(isa.R21, isa.R21, isa.R7).
				// generator 0o133: parity of (sr & 0x5B)
				Andi(isa.R6, isa.R20, 0x5B).
				Add(isa.R6, isa.R6, isa.R10).
				Lb(isa.R7, isa.R6, 0).
				Shli(isa.R21, isa.R21, 1).
				Or(isa.R21, isa.R21, isa.R7).
				Addi(isa.R2, isa.R2, 1).
				Jmp("bits").
				Label("bitsdone").
				// store the 64 encoded bits
				Shli(isa.R4, isa.R1, 3).
				Add(isa.R4, isa.R4, isa.R12).
				Sw(isa.R21, isa.R4, 0).
				Shri(isa.R21, isa.R21, 32).
				Sw(isa.R21, isa.R4, 4).
				Addi(isa.R1, isa.R1, 1).
				Jmp("wloop").
				Label("outer_next").
				Addi(isa.R9, isa.R9, -1).
				Jmp("outer").
				Label("done").
				Halt()
			return b.Build()
		},
		Init: func(v *vm.VM, p Params) error {
			// Parity lookup table.
			for i := 0; i < 256; i++ {
				x := i
				x ^= x >> 4
				x ^= x >> 2
				x ^= x >> 1
				if err := v.PokeByte(uint64(i), byte(x&1)); err != nil {
					return err
				}
			}
			r := rng("conven", p)
			return pokeWords(v, 256, words(p), func(i int) int32 {
				return int32(r.Uint32())
			})
		},
	}
}

// fbital emulates EEMBC fbital00: water-filling bit allocation over DSL
// subchannels. Repeated full scans of a 3 KB gain table to find the best
// channel, decrementing its margin — sequential reuse, 4 KB shaped.
func fbital() Kernel {
	channels := func(p Params) int { return 768 * p.Scale }
	return Kernel{
		Name:        "fbital",
		Description: "water-filling bit allocation over a 3 KB gain table",
		MemBytes: func(p Params) int {
			return channels(p)*4*2 + 64 // gains + allocated bits
		},
		Program: func(p Params) (*isa.Program, error) {
			n := int64(channels(p))
			gainBase := int64(0)
			bitsBase := n * 4
			budget := int64(48 * p.Scale) // allocation rounds
			b := isa.NewBuilder("fbital").
				Li(isa.R10, gainBase).
				Li(isa.R11, bitsBase).
				Li(isa.R15, n).
				Li(isa.R9, int64(p.Iterations)).
				Label("outer").
				Beq(isa.R9, isa.R0, "done").
				Li(isa.R14, budget).
				Label("round").
				Beq(isa.R14, isa.R0, "outer_next").
				// scan for the max-gain channel
				Li(isa.R1, 0).  // index
				Li(isa.R2, -1). // best index
				Li(isa.R3, 0).  // best gain (gains are positive)
				Label("scan").
				Bge(isa.R1, isa.R15, "scandone").
				Shli(isa.R4, isa.R1, 2).
				Add(isa.R4, isa.R4, isa.R10).
				Lw(isa.R5, isa.R4, 0).
				Bge(isa.R3, isa.R5, "skip").
				Add(isa.R3, isa.R5, isa.R0).
				Add(isa.R2, isa.R1, isa.R0).
				Label("skip").
				Addi(isa.R1, isa.R1, 1).
				Jmp("scan").
				Label("scandone").
				// all channels exhausted: stop allocating this pass
				Blt(isa.R2, isa.R0, "outer_next").
				// allocate one bit: gains[best] >>= 1 ; bits[best]++
				Shli(isa.R4, isa.R2, 2).
				Add(isa.R5, isa.R4, isa.R10).
				Lw(isa.R6, isa.R5, 0).
				Shri(isa.R6, isa.R6, 1).
				Sw(isa.R6, isa.R5, 0).
				Add(isa.R5, isa.R4, isa.R11).
				Lw(isa.R6, isa.R5, 0).
				Addi(isa.R6, isa.R6, 1).
				Sw(isa.R6, isa.R5, 0).
				Addi(isa.R14, isa.R14, -1).
				Jmp("round").
				Label("outer_next").
				Addi(isa.R9, isa.R9, -1).
				Jmp("outer").
				Label("done").
				Halt()
			return b.Build()
		},
		Init: func(v *vm.VM, p Params) error {
			r := rng("fbital", p)
			return pokeWords(v, 0, channels(p), func(i int) int32 {
				return int32(r.Intn(1<<20) + 1)
			})
		},
	}
}

// viterb emulates EEMBC viterb00: a K=7 (64-state) Viterbi decoder. Per
// received symbol, all 64 states update from two predecessor metrics
// (strided access into the previous-metric array) and write a 64-bit
// traceback word. Metrics + traceback + symbols total ≈7 KB — an 8 KB
// kernel.
func viterb() Kernel {
	symbols := func(p Params) int { return 448 * p.Scale }
	const states = 64
	return Kernel{
		Name:        "viterb",
		Description: "64-state Viterbi decode with traceback",
		MemBytes: func(p Params) int {
			// two metric arrays + symbol stream + traceback words
			return states*4*2 + symbols(p)*4 + symbols(p)*8 + 64
		},
		Program: func(p Params) (*isa.Program, error) {
			n := int64(symbols(p))
			metricA := int64(0)
			metricB := int64(states * 4)
			symBase := int64(states * 4 * 2)
			tbBase := symBase + n*4
			b := isa.NewBuilder("viterb").
				Li(isa.R10, metricA). // previous metrics
				Li(isa.R11, metricB). // current metrics
				Li(isa.R12, symBase).
				Li(isa.R13, tbBase).
				Li(isa.R15, n).
				Li(isa.R9, int64(p.Iterations)).
				Label("outer").
				Beq(isa.R9, isa.R0, "done").
				Li(isa.R1, 0). // symbol index
				Label("symloop").
				Bge(isa.R1, isa.R15, "outer_next").
				Shli(isa.R4, isa.R1, 2).
				Add(isa.R4, isa.R4, isa.R12).
				Lw(isa.R21, isa.R4, 0). // received symbol
				Li(isa.R2, 0).          // state
				Li(isa.R22, 0).         // traceback word
				Label("states").
				Li(isa.R6, states).
				Bge(isa.R2, isa.R6, "statesdone").
				// predecessors: s>>1 and (s>>1)+32
				Shri(isa.R3, isa.R2, 1).
				Shli(isa.R4, isa.R3, 2).
				Add(isa.R4, isa.R4, isa.R10).
				Lw(isa.R5, isa.R4, 0).   // metric[p0]
				Lw(isa.R6, isa.R4, 128). // metric[p0+32]
				// branch metric: cheap hash of state and symbol
				Xor(isa.R7, isa.R2, isa.R21).
				Andi(isa.R7, isa.R7, 3).
				Add(isa.R5, isa.R5, isa.R7).
				Add(isa.R6, isa.R6, isa.R7).
				// survivor = min, traceback bit = which
				Blt(isa.R5, isa.R6, "takeA").
				Add(isa.R5, isa.R6, isa.R0).
				Shli(isa.R22, isa.R22, 1).
				Ori(isa.R22, isa.R22, 1).
				Jmp("store").
				Label("takeA").
				Shli(isa.R22, isa.R22, 1).
				Label("store").
				Shli(isa.R4, isa.R2, 2).
				Add(isa.R4, isa.R4, isa.R11).
				Sw(isa.R5, isa.R4, 0).
				Addi(isa.R2, isa.R2, 1).
				Jmp("states").
				Label("statesdone").
				// write traceback word, swap metric arrays
				Shli(isa.R4, isa.R1, 3).
				Add(isa.R4, isa.R4, isa.R13).
				Sw(isa.R22, isa.R4, 0).
				Shri(isa.R22, isa.R22, 32).
				Sw(isa.R22, isa.R4, 4).
				Add(isa.R7, isa.R10, isa.R0).
				Add(isa.R10, isa.R11, isa.R0).
				Add(isa.R11, isa.R7, isa.R0).
				Addi(isa.R1, isa.R1, 1).
				Jmp("symloop").
				Label("outer_next").
				Addi(isa.R9, isa.R9, -1).
				Jmp("outer").
				Label("done").
				Halt()
			return b.Build()
		},
		Init: func(v *vm.VM, p Params) error {
			r := rng("viterb", p)
			// Initial path metrics: state 0 favoured.
			for s := 0; s < states; s++ {
				m := int32(1000)
				if s == 0 {
					m = 0
				}
				if err := v.PokeWord(uint64(s*4), m); err != nil {
					return err
				}
			}
			return pokeWords(v, uint64(states*4*2), symbols(p), func(i int) int32 {
				return int32(r.Intn(4))
			})
		},
	}
}
