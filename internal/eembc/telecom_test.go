package eembc

import (
	"testing"

	"hetsched/internal/vm"
)

func TestTelecomSuiteShape(t *testing.T) {
	suite := TelecomSuite()
	if len(suite) != 4 {
		t.Fatalf("telecom suite has %d kernels, want 4", len(suite))
	}
	names := map[string]bool{}
	for _, k := range suite {
		if k.Name == "" || k.Description == "" || k.Program == nil || k.Init == nil {
			t.Errorf("kernel %q incomplete", k.Name)
		}
		names[k.Name] = true
	}
	for _, want := range []string{"autcor", "conven", "fbital", "viterb"} {
		if !names[want] {
			t.Errorf("telecom suite missing %q", want)
		}
	}
	if len(AllKernels()) != 20 {
		t.Errorf("AllKernels returned %d, want 20", len(AllKernels()))
	}
	// The automotive canonical suite must stay untouched at 16.
	if len(Suite()) != 16 {
		t.Errorf("canonical suite changed size: %d", len(Suite()))
	}
}

func TestTelecomKernelsRunToCompletion(t *testing.T) {
	p := DefaultParams()
	for _, k := range TelecomSuite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			ctr, tr, err := Record(k, p)
			if err != nil {
				t.Fatal(err)
			}
			if ctr.Instructions < 10_000 {
				t.Errorf("only %d instructions", ctr.Instructions)
			}
			if tr.Len() < 1_000 {
				t.Errorf("only %d accesses", tr.Len())
			}
			if ctr.MemOps() != uint64(tr.Len()) {
				t.Errorf("counters disagree with trace")
			}
			limit := uint64(k.MemBytes(p))
			for _, a := range tr.Accesses {
				if a.Addr >= limit {
					t.Fatalf("access %#x beyond declared %#x", a.Addr, limit)
				}
			}
		})
	}
}

func TestTelecomByName(t *testing.T) {
	k, err := ByName("viterb")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "viterb" {
		t.Errorf("ByName returned %q", k.Name)
	}
}

func TestConvenEncodesDeterministically(t *testing.T) {
	k, err := ByName("conven")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 1, Seed: 9}
	run := func() int32 {
		prog, err := k.Program(p)
		if err != nil {
			t.Fatal(err)
		}
		machine := vm.MustNew(k.MemBytes(p), nil)
		if err := k.Init(machine, p); err != nil {
			t.Fatal(err)
		}
		if _, err := machine.Run(prog, 0); err != nil {
			t.Fatal(err)
		}
		// First encoded output word.
		w, err := machine.PeekWord(uint64(256 + 256*4))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	if run() != run() {
		t.Error("encoder output not deterministic")
	}
	if run() == 0 {
		t.Error("encoder produced all-zero output for random input")
	}
}

func TestFbitalAllocatesBudget(t *testing.T) {
	k, err := ByName("fbital")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 1, Seed: 4}
	prog, err := k.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(k.MemBytes(p), nil)
	if err := k.Init(machine, p); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	// Sum allocated bits == the 48-round budget.
	total := int32(0)
	for i := 0; i < 768; i++ {
		v, err := machine.PeekWord(uint64(768*4 + i*4))
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != 48 {
		t.Errorf("allocated %d bits, want the 48-round budget", total)
	}
}

func TestViterbMetricsStayBounded(t *testing.T) {
	k, err := ByName("viterb")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 1, Iterations: 2, Seed: 2}
	prog, err := k.Program(p)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.MustNew(k.MemBytes(p), nil)
	if err := k.Init(machine, p); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	// Path metrics grow by at most 3 per step; after 2*448 steps they must
	// stay below initial(1000) + 3*896.
	for s := 0; s < 64; s++ {
		m, err := machine.PeekWord(uint64(s * 4))
		if err != nil {
			t.Fatal(err)
		}
		if m < 0 || m > 1000+3*896 {
			t.Errorf("state %d metric %d out of bounds", s, m)
		}
	}
}

func TestTelecomWorkingSetsDiverse(t *testing.T) {
	p := DefaultParams()
	foot := map[string]int{}
	for _, k := range TelecomSuite() {
		_, tr, err := Record(k, p)
		if err != nil {
			t.Fatal(err)
		}
		foot[k.Name] = tr.Footprint(64) * 64
	}
	t.Logf("telecom footprints: %v", foot)
	if foot["conven"] >= foot["viterb"] {
		t.Errorf("conven (%d) should be far smaller than viterb (%d)",
			foot["conven"], foot["viterb"])
	}
}
