package hetsched

// Facade over internal/scenario: the scenario engine's spec grammar,
// workload generation, and load-shape helper, re-exported alongside the
// other -flag types (see PredictorSpec for the idiom).

import (
	"hetsched/internal/core"
	"hetsched/internal/scenario"
)

// ScenarioSpec is a parsed workload scenario: an arrival process
// (uniform | poisson | bursty | diurnal | closed | replay) with its
// parameters plus an optional SLO layer of deadline slack and job classes.
// It implements flag.Value and encoding.TextMarshaler/TextUnmarshaler, so
// it drops into flag sets and JSON configs; the zero value means "no
// scenario". Grammar:
//
//	poisson:rate=0.8,jobs=5000;slo=deadline:slack=2.0,classes=hi@0.2
type ScenarioSpec = scenario.Spec

// ScenarioSLO is a spec's service-level section.
type ScenarioSLO = scenario.SLO

// ScenarioClass is one named SLO job class (fraction + deadline slack).
type ScenarioClass = scenario.Class

// ParseScenarioSpec parses the scenario grammar; "" parses to the zero
// "no scenario" spec.
func ParseScenarioSpec(s string) (ScenarioSpec, error) { return scenario.Parse(s) }

// MustParseScenarioSpec is ParseScenarioSpec for known-good literals.
func MustParseScenarioSpec(s string) ScenarioSpec { return scenario.MustParse(s) }

// ScenarioArrivalFractions renders a scenario's arrival shape as n
// normalized [0, 1] fractions of the run duration — the pacing schedule
// load generators use to shape request streams by the scenario's process.
func ScenarioArrivalFractions(sp ScenarioSpec, n int, seed int64) ([]float64, error) {
	return scenario.ArrivalFractions(sp, n, seed)
}

// ScenarioWorkload materializes a scenario into a reproducible job stream
// over the system's characterization DB: arrivals from the spec's source,
// SLO classes/priorities/deadlines applied on top. The spec's rate= and
// jobs= override utilization and arrivals. Pair with
// ScenarioSpec.ApplySim, which arms SimConfig.SLOAware (and priority
// scheduling when classes are present).
func (s *System) ScenarioWorkload(sp ScenarioSpec, arrivals int, utilization float64, seed int64) ([]Job, error) {
	return sp.Generate(scenario.Params{
		DB:          s.Eval,
		Arrivals:    arrivals,
		Cores:       len(core.DefaultSimConfig().CoreSizesKB),
		Utilization: utilization,
		Seed:        seed,
	})
}
