// Command hmsim runs the paper's full evaluation: the four systems of
// Section V (base, optimal, energy-centric, proposed) over a uniform
// 5000-arrival workload on the Figure 1 quad-core machine, printing the
// Figure 6 and Figure 7 rows and the headline energy reduction.
//
// Usage:
//
//	hmsim [-arrivals 5000] [-util 0.9] [-seed 1] [-predictor ann|ensemble:table,markov,ann|...]
//	      [-j N] [-cache-dir auto] [-engine stream|onepass|replay]
//	      [-faults mttf=5e6,recover=1e5,noise=0.05,seed=1]
//	      [-trace file.json]
//	      [-cluster 8*quad;8*16x2] [-scorer hybrid] [-no-steal]
//
// -cluster switches to cluster mode: the workload is routed across the
// given multi-node topology by the two-level dispatcher (internal/cluster)
// and each node runs the proposed system; the report is the per-node
// routing table plus cluster totals. -timeline prints the merged
// cross-node schedule, -trace captures the dispatcher's route/steal audit.
//
// -faults injects a deterministic fault plan (transient/permanent core
// crashes, stuck reconfigurations, profiling-counter noise) into every
// simulated system; "off" (the default) is bit-identical to a build without
// the fault subsystem.
//
// -trace re-runs the proposed system with the decision-audit recorder
// attached and writes the event stream to the named file — Chrome
// trace-event JSON for a .json extension (open at ui.perfetto.dev),
// flat CSV otherwise. See EXPERIMENTS.md for the Perfetto recipe.
//
// Every error path exits non-zero so the command can be scripted (see
// cmd/hetschedbench and the Makefile targets).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"hetsched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmsim: ")
	if err := run(); err != nil {
		log.Fatal(err) // exit code 1
	}
}

func run() error {
	arrivals := flag.Int("arrivals", 5000, "number of benchmark arrivals (paper: 5000)")
	util := flag.Float64("util", 0.90, "offered load on the quad-core machine")
	seed := flag.Int64("seed", 1, "workload seed")
	spec := hetsched.DefaultPredictorSpec()
	flag.TextVar(&spec, "predictor", hetsched.DefaultPredictorSpec(),
		"best-core predictor: ann|oracle|linear|knn|stump|tree|table|markov|nn, or ensemble:kind[=weight],...")
	perApp := flag.Bool("perapp", false, "also print the proposed system's per-benchmark energy table")
	timeline := flag.Int("timeline", 0, "also print the first N proposed-system schedule events")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel workers for characterization and training")
	cacheDir := flag.String("cache-dir", "auto", "persistent characterization cache: auto|off|<dir>")
	var engine hetsched.Engine
	flag.TextVar(&engine, "engine", hetsched.EngineStream, "cache simulation engine for characterization: stream|onepass|replay")
	faultsFlag := flag.String("faults", "off", "fault-injection plan: off, or mttf=..,recover=..,permanent=..,stuck=..,noise=..,seed=..")
	traceFile := flag.String("trace", "", "write the proposed system's decision-audit trace to this file (.json = Chrome/Perfetto, else CSV)")
	clusterFlag := flag.String("cluster", "", "run in cluster mode over this topology (';'-joined node shapes with N* repetition, e.g. 8*quad;8*16x2)")
	var scorer hetsched.ScorerKind
	flag.TextVar(&scorer, "scorer", hetsched.ScoreHybrid, "cluster dispatcher scorer: hybrid|balance|energy|roundrobin")
	noSteal := flag.Bool("no-steal", false, "disable cross-node work stealing in cluster mode")
	var scenarioSpec hetsched.ScenarioSpec
	flag.TextVar(&scenarioSpec, "scenario", hetsched.ScenarioSpec{},
		"workload scenario (e.g. bursty:rate=1.2;slo=deadline:slack=1.5,classes=hi@0.2): runs the four systems over the scenario stream with deadline/SLO reporting")
	flag.Parse()

	dir, err := hetsched.ResolveCacheDir(*cacheDir)
	if err != nil {
		return err
	}
	faults, err := hetsched.ParseFaultPlan(*faultsFlag)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "characterizing suite and training %s predictor...\n", spec)
	sys, err := hetsched.New(hetsched.Options{Spec: spec, Workers: *jobs, CacheDir: dir, Engine: engine, Faults: faults})
	if err != nil {
		return err
	}
	if sys.Setup.EvalFromCache && sys.Setup.TrainFromCache {
		fmt.Fprintln(os.Stderr, "characterization served from cache (no kernel replay)")
	}

	cfg := hetsched.DefaultExperimentConfig()
	cfg.Arrivals = *arrivals
	cfg.Utilization = *util
	cfg.Seed = *seed

	if faults.Enabled() {
		fmt.Fprintf(os.Stderr, "injecting faults: %s\n", faults)
	}

	if *clusterFlag != "" {
		return runCluster(sys, *clusterFlag, scorer, *noSteal, cfg, *timeline, *traceFile)
	}
	if !scenarioSpec.IsZero() {
		return runScenario(sys, scenarioSpec, cfg, *timeline, *traceFile)
	}
	fmt.Fprintf(os.Stderr, "simulating 4 systems x %d arrivals at utilization %.2f...\n",
		cfg.Arrivals, cfg.Utilization)
	res, err := sys.Experiment(cfg)
	if err != nil {
		return err
	}
	fmt.Print(hetsched.FormatFigures(res))

	if *perApp || *timeline > 0 || *traceFile != "" {
		jobs, err := sys.Workload(cfg.Arrivals, cfg.Utilization, cfg.Seed)
		if err != nil {
			return err
		}
		simCfg := hetsched.SimConfig{RecordSchedule: *timeline > 0}
		var rec *hetsched.TraceRecorder
		if *traceFile != "" {
			rec = hetsched.NewTraceRecorder()
			simCfg.Trace = rec
		}
		m, err := sys.RunSystem("proposed", jobs, simCfg)
		if err != nil {
			return err
		}
		if *perApp {
			fmt.Println()
			fmt.Print(hetsched.FormatPerApp(sys, m))
		}
		if *timeline > 0 {
			fmt.Println()
			fmt.Print(hetsched.FormatSchedule(sys, m, *timeline))
		}
		if rec != nil {
			if err := hetsched.WriteTraceFile(*traceFile, rec.Events()); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", rec.Len(), *traceFile)
		}
	}
	return nil
}

// runScenario is hmsim's scenario mode: materialize the scenario's job
// stream once, arm the SLO-aware simulator features the spec asks for, and
// run the four compared systems over the identical workload, printing each
// system's metrics block (with deadline/SLO lines when the scenario sets
// deadlines). -timeline and -trace follow the proposed system's run.
func runScenario(sys *hetsched.System, sp hetsched.ScenarioSpec,
	cfg hetsched.ExperimentConfig, timeline int, traceFile string) error {
	jobs, err := sys.ScenarioWorkload(sp, cfg.Arrivals, cfg.Utilization, cfg.Seed)
	if err != nil {
		return err
	}
	var simCfg hetsched.SimConfig
	sp.ApplySim(&simCfg)
	simCfg.RecordSchedule = timeline > 0
	fmt.Fprintf(os.Stderr, "scenario %s: simulating 4 systems x %d arrivals...\n", sp, len(jobs))
	for _, name := range []string{"base", "optimal", "energy-centric", "proposed"} {
		run := simCfg
		var rec *hetsched.TraceRecorder
		if name == "proposed" && traceFile != "" {
			rec = hetsched.NewTraceRecorder()
			run.Trace = rec
		}
		m, err := sys.RunSystem(name, jobs, run)
		if err != nil {
			return err
		}
		fmt.Print(hetsched.FormatMetrics(m))
		if name == "proposed" && timeline > 0 {
			fmt.Println()
			fmt.Print(hetsched.FormatSchedule(sys, m, timeline))
		}
		if rec != nil {
			if err := hetsched.WriteTraceFile(traceFile, rec.Events()); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", rec.Len(), traceFile)
		}
	}
	return nil
}

// runCluster is hmsim's cluster mode: route the workload across the given
// topology with the two-level dispatcher, simulate every node, and print
// the per-node routing table (plus, on request, the merged timeline and
// the dispatcher's route/steal trace).
func runCluster(sys *hetsched.System, spec string, scorer hetsched.ScorerKind,
	noSteal bool, cfg hetsched.ExperimentConfig, timeline int, traceFile string) error {
	nodes, err := hetsched.ParseClusterSpec(spec)
	if err != nil {
		return fmt.Errorf("-cluster: %w", err)
	}
	jobs, err := sys.ClusterWorkload(nodes, nil, cfg.Arrivals, cfg.Utilization, cfg.Seed)
	if err != nil {
		return err
	}
	ccfg := hetsched.ClusterConfig{
		Nodes:           nodes,
		Scorer:          scorer,
		DisableStealing: noSteal,
		RecordSchedule:  timeline > 0,
	}
	var rec *hetsched.TraceRecorder
	if traceFile != "" {
		rec = hetsched.NewTraceRecorder()
		ccfg.Trace = rec
	}
	fmt.Fprintf(os.Stderr, "routing %d arrivals across %d nodes (scorer=%s)...\n",
		cfg.Arrivals, len(nodes), scorer)
	res, err := sys.RunCluster(ccfg, jobs)
	if err != nil {
		return err
	}
	fmt.Print(hetsched.FormatCluster(res))
	if timeline > 0 {
		fmt.Println()
		fmt.Print(hetsched.FormatClusterSchedule(sys, res, timeline))
	}
	if rec != nil {
		if err := hetsched.WriteTraceFile(traceFile, rec.Events()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", rec.Len(), traceFile)
	}
	return nil
}
