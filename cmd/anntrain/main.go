// Command anntrain trains the paper's bagged ANN predictor (Figure 3:
// {10, 18, 5, 1}, 30 members, 70/15/15 split) on the augmented
// characterization pool, reports its held-out accuracy and the canonical
// suite's energy degradation versus the oracle best cache size (the paper's
// < 2% claim), and optionally writes the trained model as JSON.
//
// Usage:
//
//	anntrain [-members 30] [-seed 42] [-o predictor.json] [-compare] [-j N] [-cache-dir auto]
//
// Characterization replays and ensemble members both fan out across -j
// workers, and with -cache-dir auto the characterization pools persist on
// disk, so a repeat run goes straight to training.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"hetsched"
	"hetsched/internal/ann"
	"hetsched/internal/characterize"
	"hetsched/internal/energy"
	"hetsched/internal/mlbase"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anntrain: ")

	members := flag.Int("members", 30, "ensemble size (paper: 30)")
	seed := flag.Int64("seed", 42, "training seed")
	out := flag.String("o", "", "write the trained predictor JSON to this file")
	compare := flag.Bool("compare", false, "also train and score the non-ANN baselines")
	cv := flag.Int("cv", 0, "additionally run k-fold cross-validation (0 = off)")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel workers for characterization and training")
	cacheDir := flag.String("cache-dir", "auto", "persistent characterization cache: auto|off|<dir>")
	flag.Parse()

	dir, err := hetsched.ResolveCacheDir(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	em := energy.NewDefault()
	copts := characterize.Options{Workers: *jobs}

	fmt.Fprintln(os.Stderr, "characterizing training pool (16 kernels x scales x seeds)...")
	train, warm, err := characterize.CharacterizeCached(characterize.AugmentedVariants(), em, copts, dir)
	if err != nil {
		log.Fatal(err)
	}
	eval, _, err := characterize.CharacterizeCached(characterize.CanonicalVariants(), em, copts, dir)
	if err != nil {
		log.Fatal(err)
	}
	if warm {
		fmt.Fprintln(os.Stderr, "characterization served from cache (no kernel replay)")
	}

	fmt.Fprintf(os.Stderr, "training %d bagged networks...\n", *members)
	pred, rep, err := ann.TrainSizePredictor(train, ann.PredictorConfig{
		Seed:     *seed,
		Workers:  *jobs,
		Ensemble: ann.EnsembleConfig{Members: *members},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training pool: %d samples (%d train / %d test)\n",
		rep.Samples, rep.TrainSamples, rep.TestSamples)
	fmt.Printf("ensemble:      %d members, topology {10, 18, 5, 1}\n", rep.Members)
	fmt.Printf("train accuracy %.2f   held-out accuracy %.2f   held-out MSE %.4f\n",
		rep.TrainAccuracy, rep.TestAccuracy, rep.TestMSE)

	// The paper's metric: energy degradation on the benchmark suite when
	// the predicted best size replaces the oracle best size.
	var degraded, optimal float64
	hits := 0
	for i := range eval.Records {
		r := &eval.Records[i]
		size, err := pred.PredictSizeKB(r.Features)
		if err != nil {
			log.Fatal(err)
		}
		if size == r.BestSizeKB() {
			hits++
		}
		chosen, err := r.BestConfigForSize(size)
		if err != nil {
			log.Fatal(err)
		}
		degraded += chosen.Energy.Total
		optimal += r.BestConfig().Energy.Total
	}
	fmt.Printf("canonical suite: accuracy %.2f, energy degradation %.2f%% (paper: <2%%)\n",
		float64(hits)/float64(len(eval.Records)), 100*(degraded/optimal-1))

	if *compare {
		fmt.Println("\nbaseline comparison (canonical-suite accuracy):")
		lin, err := mlbase.TrainLinear(train, 0)
		if err != nil {
			log.Fatal(err)
		}
		knn, err := mlbase.TrainKNN(train, 3)
		if err != nil {
			log.Fatal(err)
		}
		stump, err := mlbase.TrainStump(train)
		if err != nil {
			log.Fatal(err)
		}
		tree, err := mlbase.TrainTree(train, 4)
		if err != nil {
			log.Fatal(err)
		}
		linAcc, err := mlbase.Accuracy(lin, eval)
		if err != nil {
			log.Fatal(err)
		}
		knnAcc, err := mlbase.Accuracy(knn, eval)
		if err != nil {
			log.Fatal(err)
		}
		stumpAcc, err := mlbase.Accuracy(stump, eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  linear regression  %.2f\n", linAcc)
		fmt.Printf("  3-NN               %.2f\n", knnAcc)
		fmt.Printf("  decision stump     %.2f\n", stumpAcc)
		treeAcc, err := mlbase.Accuracy(tree, eval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CART tree (d=4)    %.2f\n", treeAcc)
	}

	if *cv > 0 {
		fmt.Fprintf(os.Stderr, "running %d-fold cross-validation...\n", *cv)
		res, err := ann.CrossValidate(train, *cv, ann.PredictorConfig{
			Seed:     *seed,
			Workers:  *jobs,
			Ensemble: ann.EnsembleConfig{Members: *members},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d-fold cross-validation: mean accuracy %.2f, mean MSE %.4f\n",
			res.Folds, res.MeanAccuracy, res.MeanMSE)
		fmt.Printf("per-fold accuracy: %v\n", res.FoldAccuracy)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pred.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote predictor to %s\n", *out)
	}
}
