// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be committed and diffed
// (`make bench-baseline` writes BENCH_core.json with it).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/cache/ | benchjson > BENCH_core.json
//
// The parser understands the standard benchmark line
//
//	BenchmarkL1Access/direct-8   5000000   250.0 ns/op   0 B/op   0 allocs/op
//
// plus the goos/goarch/pkg/cpu context lines; every other line (PASS, ok,
// test chatter) is ignored. Custom b.ReportMetric units are carried
// through into the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// trailing -GOMAXPROCS suffix, e.g. "BenchmarkL1Access/direct-8".
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line, when seen.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp appear with -benchmem; -1 means absent.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds any extra unit pairs (MB/s, custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if len(os.Args) > 1 { // pure filter: any argument is a usage error
		fmt.Fprintln(os.Stderr, "usage: go test -bench=... -benchmem <pkgs> | benchjson > out.json")
		os.Exit(2)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (run with `go test -bench=...`)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parse consumes go-test output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // a Benchmark* identifier in test chatter, not a result
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line into a Benchmark. One malformed
// (value, unit) pair — chatter glued onto the line, a unit with no value, a
// dangling trailing token — must not discard the whole result: the other
// pairs are real measurements (notably custom ReportMetric units on lines
// without the -benchmem columns), so the scan resynchronizes past the bad
// token and keeps what it can. A line yielding no valid pair at all is
// rejected as chatter.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	pairs := 0
	for i := 2; i+1 < len(f); {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			i++ // not a value; resynchronize on the next token
			continue
		}
		pairs++
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		i += 2
	}
	if pairs == 0 {
		return Benchmark{}, false
	}
	return b, true
}
