// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be committed and diffed
// (`make bench-baseline` writes BENCH_core.json with it), and compares two
// such documents as a regression gate (`make bench-gate` in CI).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/cache/ | benchjson > BENCH_core.json
//	benchjson -compare BENCH_core.json fresh.json -tolerance 0.15
//
// Compare mode matches benchmarks by package and name, prints a per-benchmark
// ns/op delta table, and exits nonzero when any matched benchmark slowed by
// more than the tolerance (a fraction; 0.15 means +15%) or a baseline
// benchmark disappeared from the fresh run. New benchmarks absent from the
// baseline are reported but never fail the gate.
//
// The parser understands the standard benchmark line
//
//	BenchmarkL1Access/direct-8   5000000   250.0 ns/op   0 B/op   0 allocs/op
//
// plus the goos/goarch/pkg/cpu context lines; every other line (PASS, ok,
// test chatter) is ignored. Custom b.ReportMetric units are carried
// through into the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// trailing -GOMAXPROCS suffix, e.g. "BenchmarkL1Access/direct-8".
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line, when seen.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp appear with -benchmem; -1 means absent.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds any extra unit pairs (MB/s, custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "-compare" || args[0] == "--compare") {
		os.Exit(compareMain(args[1:]))
	}
	if len(args) > 0 { // filter mode takes no arguments
		fmt.Fprintln(os.Stderr, `usage: go test -bench=... -benchmem <pkgs> | benchjson > out.json
       benchjson -compare old.json new.json [-tolerance 0.15]`)
		os.Exit(2)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (run with `go test -bench=...`)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parse consumes go-test output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // a Benchmark* identifier in test chatter, not a result
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line into a Benchmark. One malformed
// (value, unit) pair — chatter glued onto the line, a unit with no value, a
// dangling trailing token — must not discard the whole result: the other
// pairs are real measurements (notably custom ReportMetric units on lines
// without the -benchmem columns), so the scan resynchronizes past the bad
// token and keeps what it can. A line yielding no valid pair at all is
// rejected as chatter.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	pairs := 0
	for i := 2; i+1 < len(f); {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			i++ // not a value; resynchronize on the next token
			continue
		}
		pairs++
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		i += 2
	}
	if pairs == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// compareMain implements `benchjson -compare old.json new.json
// [-tolerance f]`. It returns the process exit code: 0 when every matched
// benchmark is within tolerance, 1 on any regression or missing baseline
// benchmark, 2 on usage errors.
func compareMain(args []string) int {
	tol := 0.15
	var files []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-tolerance" || a == "--tolerance":
			i++
			if i >= len(args) {
				log.Print("-tolerance needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				log.Printf("bad tolerance %q", args[i])
				return 2
			}
			tol = v
		case strings.HasPrefix(a, "-tolerance="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(a, "-tolerance="), 64)
			if err != nil || v < 0 {
				log.Printf("bad tolerance %q", a)
				return 2
			}
			tol = v
		case strings.HasPrefix(a, "-"):
			log.Printf("unknown flag %q", a)
			return 2
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		log.Print("usage: benchjson -compare old.json new.json [-tolerance 0.15]")
		return 2
	}
	oldRep, err := loadReport(files[0])
	if err != nil {
		log.Print(err)
		return 2
	}
	newRep, err := loadReport(files[1])
	if err != nil {
		log.Print(err)
		return 2
	}

	type key struct{ pkg, name string }
	fresh := map[key]Benchmark{}
	for _, b := range newRep.Benchmarks {
		fresh[key{b.Package, b.Name}] = b
	}
	seen := map[key]bool{}

	fmt.Printf("%-58s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failed := 0
	for _, ob := range oldRep.Benchmarks {
		k := key{ob.Package, ob.Name}
		seen[k] = true
		nb, ok := fresh[k]
		if !ok {
			fmt.Printf("%-58s %14.0f %14s %8s  MISSING\n", ob.Name, ob.NsPerOp, "-", "-")
			failed++
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		status := ""
		if delta > tol {
			status = "  REGRESSION"
			failed++
		}
		fmt.Printf("%-58s %14.0f %14.0f %+7.1f%%%s\n", ob.Name, ob.NsPerOp, nb.NsPerOp, delta*100, status)
	}
	for _, nb := range newRep.Benchmarks {
		if k := (key{nb.Package, nb.Name}); !seen[k] {
			fmt.Printf("%-58s %14s %14.0f %8s  new\n", nb.Name, "-", nb.NsPerOp, "-")
		}
	}
	if failed > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed beyond %.0f%% or went missing\n", failed, tol*100)
		return 1
	}
	fmt.Printf("OK: all matched benchmarks within %.0f%% of baseline\n", tol*100)
	return 0
}

// loadReport reads one benchjson document from disk.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}
