package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hetsched/internal/cache
cpu: Imaginary CPU @ 2.00GHz
BenchmarkL1Access/direct-8         	 5000000	       250.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkL1Access/4KB-2way-64B-8   	 3000000	       400 ns/op
BenchmarkThroughput-8              	 1000000	      1000 ns/op	        64.00 MB/s
PASS
ok  	hetsched/internal/cache	3.210s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "Imaginary CPU @ 2.00GHz" {
		t.Errorf("context lines misparsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkL1Access/direct-8" || b.Package != "hetsched/internal/cache" {
		t.Errorf("first benchmark misparsed: %+v", b)
	}
	if b.Iterations != 5000000 || b.NsPerOp != 250.5 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("first benchmark values: %+v", b)
	}

	// Without -benchmem the memory columns must read as absent, not zero.
	if b := rep.Benchmarks[1]; b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem columns not marked absent: %+v", b)
	}

	// Extra units land in the metrics map.
	if got := rep.Benchmarks[2].Metrics["MB/s"]; got != 64 {
		t.Errorf("MB/s metric = %v, want 64", got)
	}
}

func TestParseRejectsChatter(t *testing.T) {
	chatter := `BenchmarkFoo was mentioned in a log line
Benchmark
BenchmarkBar-8 notanumber 12 ns/op
BenchmarkBaz-8 100 chatter only here
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(chatter)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

// TestParseKeepsMetricsOnMalformedPairs is the regression gate for the
// dropped-metrics bug: one unparsable token (or a dangling odd token) on a
// result line used to throw away the entire line, silently losing custom
// ReportMetric values — most visibly on benchmarks reporting a custom unit
// without the -benchmem allocs columns.
func TestParseKeepsMetricsOnMalformedPairs(t *testing.T) {
	input := `BenchmarkCustom-8 200 1500 ns/op 42.5 events/op
BenchmarkGlued-8 300 2000 ns/op [recovered] 7.25 misses/op
BenchmarkDangling-8 400 3000 ns/op 64.00 MB/s stray
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	// Custom metric on a no-allocs line survives.
	b := rep.Benchmarks[0]
	if b.NsPerOp != 1500 || b.Metrics["events/op"] != 42.5 {
		t.Errorf("custom metric dropped: %+v", b)
	}
	if b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
		t.Errorf("absent -benchmem columns misread: %+v", b)
	}

	// A non-numeric token glued mid-line loses only itself, not the line.
	b = rep.Benchmarks[1]
	if b.NsPerOp != 2000 || b.Metrics["misses/op"] != 7.25 {
		t.Errorf("metrics after a malformed token dropped: %+v", b)
	}

	// A dangling odd token is ignored; earlier pairs survive.
	b = rep.Benchmarks[2]
	if b.NsPerOp != 3000 || b.Metrics["MB/s"] != 64 {
		t.Errorf("metrics before a dangling token dropped: %+v", b)
	}
}

// writeReport drops a minimal benchjson document for compare-mode tests.
func writeReport(t *testing.T, name string, benches []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(Report{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareMain covers the regression gate: within-tolerance passes,
// beyond-tolerance fails, a vanished baseline benchmark fails, improvements
// and new benchmarks never fail, and usage errors exit 2.
func TestCompareMain(t *testing.T) {
	old := writeReport(t, "old.json", []Benchmark{
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkB", Package: "p", Iterations: 1, NsPerOp: 500},
	})
	within := writeReport(t, "within.json", []Benchmark{
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1100},
		{Name: "BenchmarkB", Package: "p", Iterations: 1, NsPerOp: 400}, // improvement
		{Name: "BenchmarkNew", Package: "p", Iterations: 1, NsPerOp: 9},
	})
	beyond := writeReport(t, "beyond.json", []Benchmark{
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1300},
		{Name: "BenchmarkB", Package: "p", Iterations: 1, NsPerOp: 500},
	})
	missing := writeReport(t, "missing.json", []Benchmark{
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1000},
	})

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"within tolerance", []string{old, within, "-tolerance", "0.15"}, 0},
		{"regression", []string{old, beyond, "-tolerance", "0.15"}, 1},
		{"regression forgiven by loose tolerance", []string{old, beyond, "-tolerance=0.5"}, 0},
		{"missing benchmark", []string{old, missing}, 1},
		{"identical", []string{old, old}, 0},
		{"one file", []string{old}, 2},
		{"bad tolerance", []string{old, within, "-tolerance", "x"}, 2},
		{"unreadable file", []string{old, filepath.Join(t.TempDir(), "nope.json")}, 2},
	}
	for _, c := range cases {
		if got := compareMain(c.args); got != c.want {
			t.Errorf("%s: compareMain(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}
