// Command tracegen executes one benchmark on the VM and writes its full
// data-memory access trace in the compact binary format, along with the
// hardware-counter summary the profiler would record. Saved traces replay
// through cachetune -fromtrace without re-executing the program — the
// record-once/replay-everywhere flow the paper uses with SimpleScalar.
//
// Usage:
//
//	tracegen -kernel matrix -o matrix.trc [-scale 1] [-seed 1] [-iters 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetsched/internal/eembc"
	"hetsched/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	kernel := flag.String("kernel", "", "benchmark to trace (required; see cachetune -list)")
	out := flag.String("o", "", "output trace file (required)")
	scale := flag.Int("scale", 1, "dataset scale")
	seed := flag.Int64("seed", 1, "data seed")
	iters := flag.Int("iters", 4, "outer iterations")
	flag.Parse()

	if *kernel == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	k, err := eembc.ByName(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	params := eembc.Params{Scale: *scale, Iterations: *iters, Seed: *seed}
	ctr, tr, err := eembc.Record(k, params)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}

	prog, err := k.Program(params)
	if err != nil {
		log.Fatal(err)
	}
	mix := prog.Mix()
	fmt.Printf("kernel        %s (scale %d, seed %d, iters %d)\n", k.Name, *scale, *seed, *iters)
	fmt.Printf("static mix    %d instrs: %d int, %d mul/div, %d fp, %d load, %d store, %d branch\n",
		prog.Len(), mix[isa.ClassIntALU], mix[isa.ClassMulDiv], mix[isa.ClassFP],
		mix[isa.ClassLoad], mix[isa.ClassStore], mix[isa.ClassBranch])
	fmt.Printf("instructions  %d\n", ctr.Instructions)
	fmt.Printf("base cycles   %d\n", ctr.Cycles)
	fmt.Printf("accesses      %d (%d loads, %d stores)\n", tr.Len(), tr.Reads(), tr.Writes())
	fmt.Printf("footprint     %d x 64B blocks (%.1f KB)\n",
		tr.Footprint(64), float64(tr.Footprint(64)*64)/1024)
	fmt.Printf("trace file    %s: %d bytes (%.2f bytes/access)\n",
		*out, info.Size(), float64(info.Size())/float64(tr.Len()))
}
