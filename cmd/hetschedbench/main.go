// Command hetschedbench hammers a hetschedd daemon with concurrent
// POST /v1/schedule requests and reports scheduling-service throughput,
// latency percentiles and backpressure behaviour — the "heavy traffic"
// benchmark for the serving path.
//
// With -addr it targets a running daemon; without it, it starts a daemon
// in-process on a loopback port (training the predictor first), so
//
//	go run ./cmd/hetschedbench -requests 256 -concurrency 64 -workers 4
//
// is a self-contained load test: 64 in-flight requests against a 4-worker
// pool, with 429s counted as correct backpressure rather than failures.
//
// Exit status is non-zero when any request fails with a status other than
// 200 or 429, so the benchmark is scriptable in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetsched"
	"hetsched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetschedbench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", "", "target daemon base URL (e.g. http://localhost:8080); empty starts one in-process")
	requests := flag.Int("requests", 256, "total schedule requests to issue")
	concurrency := flag.Int("concurrency", 64, "in-flight request cap")
	arrivals := flag.Int("arrivals", 200, "workload length per request")
	util := flag.Float64("util", 0.9, "offered load per request")
	system := flag.String("system", "proposed", "system to schedule with")
	kind := hetsched.PredictOracle
	flag.TextVar(&kind, "predictor", hetsched.PredictOracle, "in-process predictor (oracle avoids ANN training)")
	workers := flag.Int("workers", 4, "in-process worker pool size")
	queue := flag.Int("queue", 32, "in-process queue depth (small enough to exercise 429s)")
	flag.Parse()

	if *requests < 1 || *concurrency < 1 {
		return fmt.Errorf("requests and concurrency must be >= 1")
	}

	base := *addr
	if base == "" {
		fmt.Fprintf(os.Stderr, "starting in-process daemon (%s predictor, %d workers, queue %d)...\n",
			kind, *workers, *queue)
		sys, err := hetsched.New(hetsched.Options{Predictor: kind})
		if err != nil {
			return err
		}
		srv, err := server.New(sys, server.Config{
			Workers:    *workers,
			QueueDepth: *queue,
			Logger:     log.New(io.Discard, "", 0),
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go http.Serve(ln, srv.Handler())
		defer ln.Close()
		base = "http://" + ln.Addr().String()
	}

	payload, err := json.Marshal(map[string]any{
		"system":      *system,
		"arrivals":    *arrivals,
		"utilization": *util,
	})
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	var (
		next      atomic.Int64
		ok        atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration // successful requests only
	)
	fmt.Fprintf(os.Stderr, "firing %d requests (%d in flight) at %s ...\n",
		*requests, *concurrency, base)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(seedBase int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				// Vary the seed per request so runs aren't byte-identical.
				body := bytes.Replace(payload, []byte(`"system"`),
					[]byte(fmt.Sprintf(`"seed":%d,"system"`, i+1)), 1)
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, time.Since(t0))
					mu.Unlock()
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("requests:    %d total, %d ok, %d backpressured (429), %d failed\n",
		*requests, ok.Load(), rejected.Load(), failed.Load())
	fmt.Printf("wall time:   %.2fs\n", elapsed.Seconds())
	fmt.Printf("throughput:  %.1f scheduled workloads/s (%.0f simulated arrivals/s)\n",
		float64(ok.Load())/elapsed.Seconds(),
		float64(ok.Load())*float64(*arrivals)/elapsed.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			idx := int(p/100*float64(len(latencies))+0.9999) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(latencies) {
				idx = len(latencies) - 1
			}
			return latencies[idx]
		}
		fmt.Printf("latency:     p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
			ms(pct(50)), ms(pct(95)), ms(pct(99)), ms(latencies[len(latencies)-1]))
	}

	// Pull the daemon's own view of the run.
	if resp, err := client.Get(base + "/metrics"); err == nil {
		var snap server.Snapshot
		if json.NewDecoder(resp.Body).Decode(&snap) == nil {
			ep := snap.Endpoints["schedule"]
			fmt.Printf("server view: accepted=%d rejected=%d p95=%.1fms queue_wait_p95=%.1fms workers=%d\n",
				snap.JobsAccepted, snap.JobsRejected, ep.P95Ms, ep.QueueWaitP95, snap.Workers)
		}
		resp.Body.Close()
	}

	if failed.Load() > 0 {
		return fmt.Errorf("%d requests failed", failed.Load())
	}
	if ok.Load() == 0 {
		return fmt.Errorf("no request succeeded")
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
