// Command hetschedbench hammers a hetschedd daemon with concurrent
// POST /v1/schedule requests and reports scheduling-service throughput,
// latency percentiles and backpressure behaviour — the "heavy traffic"
// benchmark for the serving path.
//
// With -addr it targets a running daemon; without it, it starts a daemon
// in-process on a loopback port (training the predictor first), so
//
//	go run ./cmd/hetschedbench -requests 256 -concurrency 64 -workers 4
//
// is a self-contained load test: 64 in-flight requests against a 4-worker
// pool, with 429s counted as correct backpressure rather than failures.
//
// -cluster switches the target to POST /v1/cluster/schedule, routing each
// request's workload across the given multi-node topology; the report then
// also shows the daemon's cumulative cluster run/steal counters.
//
// -batch N switches to the batch serving path (POST /v1/schedule/batch, or
// the cluster variant with -cluster): each request carries N explicit jobs,
// and -dup-skew controls what fraction of them reuse one hot kernel
// variant. The report then adds the coalescing-effectiveness line —
// characterization lookups issued vs kernels actually computed — pulled
// from the daemon's /metrics characterization block.
//
// Client-side latency percentiles (p50/p95/p99/p99.9) come from the same
// streaming reservoir the daemon uses for /metrics, so the two views are
// directly comparable.
//
// Exit status is non-zero when the failed-request fraction (statuses other
// than 200 or 429) exceeds -max-errors (default 0), so the benchmark is
// scriptable in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hetsched"
	"hetsched/internal/server"
	"hetsched/internal/stats"
)

// latencyReservoirCap bounds the client-side latency sample; 4096 samples
// hold p99.9 of any benchmark run this tool can realistically issue.
const latencyReservoirCap = 4096

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetschedbench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", "", "target daemon base URL (e.g. http://localhost:8080); empty starts one in-process")
	requests := flag.Int("requests", 256, "total schedule requests to issue")
	concurrency := flag.Int("concurrency", 64, "in-flight request cap")
	arrivals := flag.Int("arrivals", 200, "workload length per request")
	util := flag.Float64("util", 0.9, "offered load per request")
	system := flag.String("system", "proposed", "system to schedule with")
	spec := hetsched.MustParsePredictorSpec("oracle")
	flag.TextVar(&spec, "predictor", hetsched.MustParsePredictorSpec("oracle"),
		"in-process predictor (oracle avoids ANN training); any kind or ensemble:kind[=weight],...")
	workers := flag.Int("workers", 4, "in-process worker pool size")
	queue := flag.Int("queue", 32, "in-process queue depth (small enough to exercise 429s)")
	cluster := flag.String("cluster", "", "benchmark /v1/cluster/schedule over this topology instead of /v1/schedule (e.g. 8*quad;8*16x2)")
	batch := flag.Int("batch", 0, "jobs per request; > 0 targets the batch endpoint (/v1/schedule/batch) instead")
	dupSkew := flag.Float64("dup-skew", 0.8, "fraction of each batch reusing one hot kernel variant (duplicate-key skew; batch mode only)")
	maxErrors := flag.Float64("max-errors", 0, "tolerated failed-request fraction in [0, 1) before a non-zero exit")
	var scenarioSpec hetsched.ScenarioSpec
	flag.TextVar(&scenarioSpec, "scenario", hetsched.ScenarioSpec{},
		"workload scenario each request schedules (e.g. bursty:rate=1.2;slo=deadline:slack=1.5); /v1/schedule only")
	spread := flag.Duration("spread", 0, "pace request launches over this wall-clock window using the scenario's arrival shape (0 = fire at full speed)")
	flag.Parse()

	if *requests < 1 || *concurrency < 1 {
		return fmt.Errorf("requests and concurrency must be >= 1")
	}
	if *batch < 0 || *batch > 20000 {
		return fmt.Errorf("-batch %d out of range [0, 20000]", *batch)
	}
	if *dupSkew < 0 || *dupSkew > 1 {
		return fmt.Errorf("-dup-skew %v out of range [0, 1]", *dupSkew)
	}
	if *maxErrors < 0 || *maxErrors >= 1 {
		return fmt.Errorf("-max-errors %v out of range [0, 1)", *maxErrors)
	}
	if !scenarioSpec.IsZero() && (*batch > 0 || *cluster != "") {
		return fmt.Errorf("-scenario applies to /v1/schedule only (not -batch or -cluster)")
	}

	// The launch schedule: with -spread, request i fires at launchAt[i]
	// after start — shaped by the scenario's arrival process (uniform when
	// no scenario is set), so the daemon sees poisson/bursty/diurnal load
	// rather than a closed firehose.
	var launchAt []time.Duration
	if *spread > 0 {
		shape := scenarioSpec
		if shape.IsZero() {
			shape = hetsched.MustParseScenarioSpec("uniform")
		}
		fracs, err := hetsched.ScenarioArrivalFractions(shape, *requests, 1)
		if err != nil {
			return fmt.Errorf("-spread: %w", err)
		}
		launchAt = make([]time.Duration, len(fracs))
		for i, f := range fracs {
			launchAt[i] = time.Duration(f * float64(*spread))
		}
	}

	base := *addr
	if base == "" {
		fmt.Fprintf(os.Stderr, "starting in-process daemon (%s predictor, %d workers, queue %d)...\n",
			spec, *workers, *queue)
		sys, err := hetsched.New(hetsched.Options{Spec: spec})
		if err != nil {
			return err
		}
		srv, err := server.New(sys, server.Config{
			Workers:    *workers,
			QueueDepth: *queue,
			Logger:     log.New(io.Discard, "", 0),
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go http.Serve(ln, srv.Handler())
		defer ln.Close()
		base = "http://" + ln.Addr().String()
	}

	endpoint, epName := "/v1/schedule", "schedule"
	fields := map[string]any{
		"system":      *system,
		"arrivals":    *arrivals,
		"utilization": *util,
	}
	if !scenarioSpec.IsZero() {
		fields["scenario"] = scenarioSpec.String()
	}
	if *cluster != "" {
		if _, err := hetsched.ParseClusterSpec(*cluster); err != nil {
			return fmt.Errorf("-cluster: %w", err)
		}
		endpoint, epName = "/v1/cluster/schedule", "cluster"
		fields["nodes"] = *cluster
	}
	if *batch > 0 {
		delete(fields, "arrivals")
		if *cluster != "" {
			endpoint, epName = "/v1/cluster/schedule/batch", "cluster_batch"
		} else {
			endpoint, epName = "/v1/schedule/batch", "batch"
		}
	}
	payload, err := json.Marshal(fields)
	if err != nil {
		return err
	}

	kernels := hetsched.Kernels()
	client := &http.Client{Timeout: 5 * time.Minute}
	// Successful-request latencies go through the same streaming reservoir
	// the daemon uses for /metrics, so client and server percentiles are
	// directly comparable.
	latencies, err := stats.NewReservoir(latencyReservoirCap, 1)
	if err != nil {
		return err
	}
	var (
		next     atomic.Int64
		ok       atomic.Int64
		rejected atomic.Int64
		failed   atomic.Int64
		mu       sync.Mutex
		maxLat   time.Duration
	)
	fmt.Fprintf(os.Stderr, "firing %d requests (%d in flight) at %s ...\n",
		*requests, *concurrency, base)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(seedBase int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				if launchAt != nil {
					if d := launchAt[i] - time.Since(start); d > 0 {
						time.Sleep(d)
					}
				}
				var body []byte
				if *batch > 0 {
					body = batchBody(payload, i, *batch, *dupSkew, kernels)
				} else {
					// Vary the seed per request so runs aren't byte-identical.
					body = bytes.Replace(payload, []byte(`"system"`),
						[]byte(fmt.Sprintf(`"seed":%d,"system"`, i+1)), 1)
				}
				t0 := time.Now()
				resp, err := client.Post(base+endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					lat := time.Since(t0)
					mu.Lock()
					latencies.Observe(ms(lat))
					if lat > maxLat {
						maxLat = lat
					}
					mu.Unlock()
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("requests:    %d total, %d ok, %d backpressured (429), %d failed\n",
		*requests, ok.Load(), rejected.Load(), failed.Load())
	fmt.Printf("wall time:   %.2fs\n", elapsed.Seconds())
	jobsPer := *arrivals
	if *batch > 0 {
		jobsPer = *batch
	}
	fmt.Printf("throughput:  %.1f scheduled workloads/s (%.0f simulated arrivals/s)\n",
		float64(ok.Load())/elapsed.Seconds(),
		float64(ok.Load())*float64(jobsPer)/elapsed.Seconds())
	if qs, err := latencies.Quantiles(0.50, 0.95, 0.99, 0.999); err == nil {
		fmt.Printf("latency:     p50 %.1fms  p95 %.1fms  p99 %.1fms  p99.9 %.1fms  max %.1fms\n",
			qs[0], qs[1], qs[2], qs[3], ms(maxLat))
	}

	// Pull the daemon's own view of the run.
	if resp, err := client.Get(base + "/metrics"); err == nil {
		var snap server.Snapshot
		if json.NewDecoder(resp.Body).Decode(&snap) == nil {
			ep := snap.Endpoints[epName]
			fmt.Printf("server view: accepted=%d rejected=%d shed=%d p95=%.1fms queue_wait_p95=%.1fms workers=%d\n",
				snap.JobsAccepted, snap.JobsRejected, snap.JobsShed, ep.P95Ms, ep.QueueWaitP95, snap.Workers)
			if *cluster != "" {
				fmt.Printf("cluster view: runs=%d steals=%d across %d nodes\n",
					snap.ClusterRuns, snap.ClusterSteals, len(snap.ClusterNodes))
			}
			// SLO view: the deadline accounting the daemon accumulated from
			// scenario-bearing runs (present only with a -scenario slo= section).
			if snap.SLORuns > 0 && snap.SLODeadlines > 0 {
				fmt.Printf("slo view:    %d runs, %d/%d deadlines missed (%.2f%%), %d slo migrations\n",
					snap.SLORuns, snap.SLOMisses, snap.SLODeadlines,
					100*float64(snap.SLOMisses)/float64(snap.SLODeadlines), snap.SLOMigrations)
			}
			// Coalescing effectiveness: how many characterization lookups the
			// serving tier absorbed vs how many actually ran the kernel.
			if c := snap.Characterization; c != nil && c.Requests > 0 {
				computed := c.Computed
				if computed == 0 {
					computed = 1
				}
				fmt.Printf("characterize: %d tier requests -> %d computed (%.1fx reduction; %d mem hits, %d coalesced, %d disk hits)\n",
					c.Requests, c.Computed, float64(c.Requests)/float64(computed),
					c.Mem.Hits, c.Mem.Coalesced, c.DiskHits)
			}
		}
		resp.Body.Close()
	}

	if frac := float64(failed.Load()) / float64(*requests); frac > *maxErrors {
		return fmt.Errorf("%d of %d requests failed (%.1f%% > -max-errors %.1f%%)",
			failed.Load(), *requests, 100*frac, 100**maxErrors)
	}
	if ok.Load() == 0 {
		return fmt.Errorf("no request succeeded")
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// batchBody splices a deterministic jobs array into the base payload:
// round(skew×n) jobs per request reuse one hot kernel variant (the first
// kernel at canonical parameters) and the rest cycle through a cold pool
// of distinct kernel/data-seed variants, so the serving tier's coalescing
// and LRU face a realistic duplicate-key distribution.
func batchBody(payload []byte, req int64, n int, skew float64, kernels []hetsched.Kernel) []byte {
	hot := int(skew*float64(n) + 0.5)
	var jobs bytes.Buffer
	jobs.WriteString(`"jobs":[`)
	for j := 0; j < n; j++ {
		if j > 0 {
			jobs.WriteByte(',')
		}
		if j < hot || len(kernels) < 2 {
			fmt.Fprintf(&jobs, `{"kernel":%q}`, kernels[0].Name)
			continue
		}
		v := int(req)*n + j
		cold := kernels[1+v%(len(kernels)-1)]
		fmt.Fprintf(&jobs, `{"kernel":%q,"data_seed":%d}`,
			cold.Name, 2+v/(len(kernels)-1)%8)
	}
	jobs.WriteString(`],`)
	return bytes.Replace(payload, []byte(`"system"`), append(jobs.Bytes(), []byte(`"system"`)...), 1)
}
