// Command cachetune explores the cache design space for one benchmark: it
// executes the kernel, scores every Table 1 configuration under the
// Figure 4 energy model — streaming accesses straight into the one-pass
// simulator by default (-engine=stream), from a recorded trace in a single
// traversal with -engine=onepass, or one replay per configuration with
// -engine=replay —
// prints the full sweep, and then walks the Figure 5 tuning heuristic on
// each core size to show how few configurations the heuristic needs.
//
// Usage:
//
//	cachetune [-kernel tblook] [-scale 1] [-seed 1] [-engine stream|onepass|replay] [-space]
//	          [-trace walk.json] [-predictor ensemble:table,markov,ann]
//	cachetune -list
//
// -trace records the heuristic's walk as decision-audit tune events — one
// per configuration tried, cycle-stamped with the step index, marked
// accepted when it improved on the best seen for its core size — and writes
// them to the named file (.json = Chrome/Perfetto, else CSV).
//
// -predictor additionally characterizes the suite, builds the named
// predictor (any -predictor spec the other commands accept) and prints its
// best-size call for the kernel next to the oracle: predicted size, energy
// regret, and — for ensembles — the per-member ballots.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"hetsched"
	"hetsched/internal/cache"
	"hetsched/internal/characterize"
	"hetsched/internal/eembc"
	"hetsched/internal/energy"
	"hetsched/internal/tuner"
	"hetsched/internal/vm"
)

// sweepTrace scores a saved trace across the full design space: one pass
// through the trace for all 18 configurations by default (a saved trace is
// already materialized, so stream and onepass coincide here), or the
// reference per-configuration replay loop under -engine=replay.
func sweepTrace(path string, engine characterize.Engine) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := vm.LoadTrace(f)
	if err != nil {
		return err
	}
	em := energy.NewDefault()
	fmt.Printf("trace %s: %d accesses, footprint %.1f KB\n\n",
		path, tr.Len(), float64(tr.Footprint(64)*64)/1024)
	fmt.Printf("%-12s %10s %10s %14s\n", "config", "misses", "missrate", "total energy")
	space := cache.DesignSpace()
	traversals := len(space)
	var stats []cache.MultiStats
	if engine != characterize.EngineReplay {
		ms, err := cache.NewMultiSim(space)
		if err != nil {
			return err
		}
		tr.Flatten().ReplayBatch(ms)
		stats = ms.Stats()
		traversals = 1
	} else {
		for _, cfg := range space {
			l1, err := cache.NewL1(cfg)
			if err != nil {
				return err
			}
			for _, a := range tr.Accesses {
				l1.Access(a.Addr, a.Write)
			}
			s := l1.Stats()
			stats = append(stats, cache.MultiStats{Config: cfg, Hits: s.Hits, Misses: s.Misses})
		}
	}
	for _, s := range stats {
		// Cycle baseline is unknown for a bare trace; charge one cycle per
		// access plus miss stalls, which preserves the ranking.
		cycles := em.ExecCycles(uint64(tr.Len()), s.Config, s.Misses)
		e := em.Total(s.Config, s.Hits, s.Misses, cycles)
		fmt.Printf("%-12s %10d %9.2f%% %12.0f nJ\n",
			s.Config, s.Misses, 100*float64(s.Misses)/float64(tr.Len()), e.Total)
	}
	fmt.Fprintf(os.Stderr, "engine %s: %d trace traversal(s) for %d configurations\n",
		engine, traversals, len(space))
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachetune: ")
	if err := run(); err != nil {
		log.Fatal(err) // exit code 1 on every error path, so scripts can rely on $?
	}
}

func run() error {
	kernel := flag.String("kernel", "tblook", "benchmark to explore")
	scale := flag.Int("scale", 1, "dataset scale")
	seed := flag.Int64("seed", 1, "data seed")
	list := flag.Bool("list", false, "list available kernels and exit")
	space := flag.Bool("space", false, "print the Table 1 design space and exit")
	fromTrace := flag.String("fromtrace", "", "sweep a saved trace file (see tracegen) instead of a kernel")
	var engine characterize.Engine
	flag.TextVar(&engine, "engine", characterize.EngineStream, "cache simulation engine: stream (fused execution+scoring, no trace), onepass (record then score in one traversal) or replay (reference per-config path)")
	traceFile := flag.String("trace", "", "write the tuning walk as decision-audit tune events to this file (.json = Chrome/Perfetto, else CSV)")
	predictorFlag := flag.String("predictor", "", "also report this predictor's best-size call for the kernel (any kind or ensemble:kind[=weight],...; empty skips)")
	flag.Parse()

	if *space {
		fmt.Print(hetsched.FormatDesignSpace())
		return nil
	}
	if *list {
		for _, k := range eembc.AllKernels() {
			fmt.Printf("%-8s %s\n", k.Name, k.Description)
		}
		return nil
	}
	if *fromTrace != "" {
		return sweepTrace(*fromTrace, engine)
	}

	params := eembc.Params{Scale: *scale, Iterations: 4, Seed: *seed}
	before := characterize.ReplayCount()
	db, err := characterize.CharacterizeWithOptions(
		[]characterize.Variant{{Kernel: *kernel, Params: params}},
		energy.NewDefault(),
		characterize.Options{Engine: engine},
	)
	if err != nil {
		return err
	}
	rec := &db.Records[0]
	fmt.Fprintf(os.Stderr, "engine %s: %d trace traversal(s) for %d configurations\n",
		engine, characterize.ReplayCount()-before, len(cache.DesignSpace()))

	fmt.Printf("kernel %s (scale %d, seed %d): %d accesses, %d base cycles\n\n",
		rec.Kernel, params.Scale, params.Seed, rec.Accesses, rec.BaseCycles)

	// Full design-space sweep, sorted by total energy.
	rows := append([]characterize.ConfigResult(nil), rec.Configs...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Energy.Total < rows[j].Energy.Total })
	fmt.Printf("%-12s %10s %10s %12s %14s\n", "config", "misses", "missrate", "cycles", "total energy")
	for _, cr := range rows {
		fmt.Printf("%-12s %10d %9.2f%% %12d %12.0f nJ\n",
			cr.Config, cr.Misses,
			100*float64(cr.Misses)/float64(rec.Accesses),
			cr.Cycles, cr.Energy.Total)
	}
	best := rec.BestConfig()
	fmt.Printf("\noracle best configuration: %s (%.0f nJ)\n\n", best.Config, best.Energy.Total)

	// Figure 5 heuristic on each core size. One size failing must not
	// discard the others' results: finish the walk, then report the first
	// error through the non-zero exit.
	fmt.Println("tuning heuristic (Figure 5), one execution per step:")
	var audit *hetsched.TraceRecorder
	if *traceFile != "" {
		audit = hetsched.NewTraceRecorder()
		audit.SetSystem("cachetune")
	}
	var firstErr error
	for _, size := range cache.Sizes() {
		if err := tuneSize(rec, size, audit); err != nil {
			fmt.Printf("  %dKB core: %v\n", size, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if audit != nil {
		if err := hetsched.WriteTraceFile(*traceFile, audit.Events()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d tuning-walk trace events to %s\n", audit.Len(), *traceFile)
	}
	if *predictorFlag != "" {
		if err := reportPrediction(*predictorFlag, *kernel); err != nil {
			return err
		}
	}
	return firstErr
}

// reportPrediction builds the named predictor over the canonical suite
// characterization and prints its best-size call for the kernel: the
// prediction, the oracle, the energy regret of running at the predicted
// size, and the per-member ballots when the predictor exposes them.
func reportPrediction(specStr, kernel string) error {
	spec, err := hetsched.ParsePredictorSpec(specStr)
	if err != nil {
		return err
	}
	dir, err := hetsched.ResolveCacheDir("auto")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "characterizing suite and building %s predictor...\n", spec)
	sys, err := hetsched.New(hetsched.Options{Spec: spec, CacheDir: dir})
	if err != nil {
		return err
	}
	d, err := sys.PredictBestSizeDetail(kernel)
	if err != nil {
		return err
	}
	verdict := "miss"
	if d.PredictedKB == d.OracleKB {
		verdict = "match"
	}
	fmt.Printf("\npredictor %s: %dKB (oracle %dKB, %s, regret %.0f nJ)\n",
		spec, d.PredictedKB, d.OracleKB, verdict, d.RegretNJ)
	for _, v := range d.Votes {
		fmt.Printf("  member %-8s -> %3dKB  weight %.3f  confidence %.2f\n",
			v.Name, v.SizeKB, v.Weight, v.Confidence)
	}
	return nil
}

// tuneSize walks the heuristic for one core size and prints its row. With a
// non-nil audit recorder it records one tune event per configuration tried:
// the step index stands in for the cycle stamp (the walk has no simulated
// clock), and a step is accepted when it improved on the size's best.
func tuneSize(rec *characterize.Record, size int, audit *hetsched.TraceRecorder) error {
	tn := tuner.MustNew(size)
	step := 0
	bestE := 0.0
	err := tuner.Walk(tn, func(cfg cache.Config) (float64, error) {
		cr, err := rec.Result(cfg)
		if err != nil {
			return 0, err
		}
		if audit != nil {
			improved := step == 0 || cr.Energy.Total < bestE
			if improved {
				bestE = cr.Energy.Total
			}
			audit.Record(hetsched.TraceEvent{
				Kind:     hetsched.TraceKindTune,
				Cycle:    uint64(step),
				Job:      -1,
				App:      -1,
				Core:     -1,
				Config:   cfg.String(),
				SizeKB:   size,
				EnergyNJ: cr.Energy.Total,
				Accepted: improved,
				Detail:   rec.Kernel,
			})
			step++
		}
		return cr.Energy.Total, nil
	})
	if err != nil {
		return err
	}
	bestCfg, bestE, _ := tn.Best()
	oracle, err := rec.BestConfigForSize(size)
	if err != nil {
		return err
	}
	gap := 100 * (bestE/oracle.Energy.Total - 1)
	fmt.Printf("  %dKB core: explored %d of %d configs -> %s (%.0f nJ, %.1f%% above per-size oracle %s)\n",
		size, len(tn.Explored()), len(cache.ConfigsForSize(size)),
		bestCfg, bestE, gap, oracle.Config)
	return nil
}
