// Command hmsweep sweeps the scheduling experiment across offered load,
// arrival models and systems, emitting one CSV row per grid cell — the data
// behind load-sensitivity plots.
//
// Usage:
//
//	hmsweep [-arrivals 1500] [-utils 0.5,0.75,0.9] [-models uniform,poisson,bursty]
//	        [-systems base,optimal,sat,energy-centric,proposed]
//	        [-predictor ann] [-engine stream] [-seed 1] [-j N] [-cache-dir auto]
//	        [-faults mttf=5e6,recover=1e5,seed=1] [-trace cell.json]
//	        [-scenario "poisson:rate=0.9,jobs=5000;slo=deadline:slack=1.5"] > sweep.csv
//
// -scenario replaces the arrival-model dimension with a workload scenario:
// the spec's source generates every cell's jobs, the SLO layer (classes,
// deadlines) arms the deadline-aware scheduler, and five deadline/SLO
// columns are appended to the CSV. Without -scenario the CSV is emitted
// byte-for-byte as before.
//
// -faults injects one deterministic fault plan into every grid cell (the
// data behind degradation-versus-load plots); faulted sweeps append fault
// columns to the CSV, while the default "off" emits today's CSV
// byte-for-byte.
//
// -trace re-runs the sweep's first grid cell (first utilization, first
// model, first system) with the decision-audit recorder attached and writes
// the event stream to the named file (.json = Chrome/Perfetto, else CSV).
// The re-run reuses the cell's own deterministic workload seed, so the
// trace explains exactly the first CSV row; the parallel sweep itself runs
// untraced, keeping its output worker-count-invariant.
//
// Grid cells simulate in parallel across -j workers (default: all CPUs);
// the CSV is point-for-point identical for any worker count. With
// -cache-dir auto the characterization DB persists under the user cache
// directory, so a second run skips kernel replay entirely. If a grid point
// errors the completed rows are still flushed to stdout before the
// non-zero exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"hetsched"
	"hetsched/internal/core"
	"hetsched/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmsweep: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	arrivals := flag.Int("arrivals", 1500, "arrivals per experiment")
	utilsFlag := flag.String("utils", "0.5,0.75,0.9", "comma-separated utilizations")
	modelsFlag := flag.String("models", "uniform", "comma-separated arrival models (uniform|poisson|bursty)")
	systemsFlag := flag.String("systems", "base,optimal,energy-centric,proposed", "comma-separated systems")
	spec := hetsched.DefaultPredictorSpec()
	flag.TextVar(&spec, "predictor", hetsched.DefaultPredictorSpec(),
		"predictor: ann|oracle|linear|knn|stump|tree|table|markov|nn, or ensemble:kind[=weight],...")
	var engine hetsched.Engine
	flag.TextVar(&engine, "engine", hetsched.EngineStream, "cache simulation engine: stream|onepass|replay")
	seed := flag.Int64("seed", 1, "workload seed")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel workers for setup and grid simulation")
	cacheDir := flag.String("cache-dir", "auto", "persistent characterization cache: auto|off|<dir>")
	faultsFlag := flag.String("faults", "off", "fault-injection plan for every grid cell: off, or mttf=..,recover=..,permanent=..,stuck=..,noise=..,seed=..")
	traceFile := flag.String("trace", "", "re-run the first grid cell traced and write the events to this file (.json = Chrome/Perfetto, else CSV)")
	var scenarioSpec hetsched.ScenarioSpec
	flag.TextVar(&scenarioSpec, "scenario", hetsched.ScenarioSpec{},
		"workload scenario replacing -models (e.g. poisson:rate=0.9,jobs=5000;slo=deadline:slack=1.5); appends deadline/SLO CSV columns")
	flag.Parse()

	utils, err := parseFloats(*utilsFlag)
	if err != nil {
		return err
	}
	models, err := parseModels(*modelsFlag)
	if err != nil {
		return err
	}
	dir, err := hetsched.ResolveCacheDir(*cacheDir)
	if err != nil {
		return err
	}
	faults, err := hetsched.ParseFaultPlan(*faultsFlag)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "setting up (%s predictor, %s engine, %d workers)...\n", spec, engine, *jobs)
	before := hetsched.ReplayCount()
	sys, err := hetsched.New(hetsched.Options{Spec: spec, Workers: *jobs, CacheDir: dir, Engine: engine})
	if err != nil {
		return err
	}
	if sys.Setup.EvalFromCache && sys.Setup.TrainFromCache {
		fmt.Fprintln(os.Stderr, "characterization served from cache (no kernel replay)")
	} else if variants := len(sys.Eval.Records) + len(sys.Train.Records); variants > 0 {
		traversals := hetsched.ReplayCount() - before
		fmt.Fprintf(os.Stderr, "engine %s: %d trace traversals for %d kernel variants (%.1f per kernel)\n",
			engine, traversals, variants, float64(traversals)/float64(variants))
	}

	if faults.Enabled() {
		fmt.Fprintf(os.Stderr, "injecting faults into every grid cell: %s\n", faults)
	}
	swCfg := sweep.Config{
		Arrivals:     *arrivals,
		Utilizations: utils,
		Models:       models,
		Systems:      strings.Split(*systemsFlag, ","),
		Seed:         *seed,
		Workers:      *jobs,
	}
	swCfg.Sim.Faults = faults
	if !scenarioSpec.IsZero() {
		fmt.Fprintf(os.Stderr, "scenario sweep: %s\n", scenarioSpec)
		swCfg.Scenario = &scenarioSpec
	}
	points, err := sweep.Run(sys.Eval, sys.Energy, sys.Pred, swCfg)
	// A grid-point failure must not discard finished work: flush every
	// completed row before reporting the error.
	if werr := sweep.WriteCSV(os.Stdout, points); werr != nil {
		return werr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "partial results: %d completed grid points written\n", len(points))
		return err
	}
	if *traceFile != "" {
		if err := traceFirstCell(sys, swCfg, *traceFile); err != nil {
			return err
		}
	}
	return nil
}

// traceFirstCell re-runs the sweep's first (utilization, model, system)
// cell as a 1x1x1 sub-grid with the decision-audit recorder attached. The
// sub-grid derives the identical cell seed (indices 0,0), so the traced run
// is the first CSV row, event for event.
func traceFirstCell(sys *hetsched.System, swCfg sweep.Config, path string) error {
	rec := hetsched.NewTraceRecorder()
	cellCfg := swCfg
	cellCfg.Utilizations = swCfg.Utilizations[:1]
	cellCfg.Models = swCfg.Models[:1]
	cellCfg.Systems = swCfg.Systems[:1]
	cellCfg.Workers = 1
	cellCfg.Sim.Trace = rec
	if _, err := sweep.Run(sys.Eval, sys.Energy, sys.Pred, cellCfg); err != nil {
		return err
	}
	if err := hetsched.WriteTraceFile(path, rec.Events()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d trace events for cell (util=%v, model=%s, system=%s) to %s\n",
		rec.Len(), cellCfg.Utilizations[0], cellCfg.Models[0], cellCfg.Systems[0], path)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad utilization %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseModels(s string) ([]core.ArrivalModel, error) {
	var out []core.ArrivalModel
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "uniform":
			out = append(out, core.ArrivalUniform)
		case "poisson":
			out = append(out, core.ArrivalPoisson)
		case "bursty":
			out = append(out, core.ArrivalBursty)
		default:
			return nil, fmt.Errorf("unknown arrival model %q", part)
		}
	}
	return out, nil
}
