// Command hmsweep sweeps the scheduling experiment across offered load,
// arrival models and systems, emitting one CSV row per grid cell — the data
// behind load-sensitivity plots.
//
// Usage:
//
//	hmsweep [-arrivals 1500] [-utils 0.5,0.75,0.9] [-models uniform,poisson,bursty]
//	        [-systems base,optimal,sat,energy-centric,proposed]
//	        [-predictor ann] [-seed 1] > sweep.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hetsched"
	"hetsched/internal/core"
	"hetsched/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmsweep: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	arrivals := flag.Int("arrivals", 1500, "arrivals per experiment")
	utilsFlag := flag.String("utils", "0.5,0.75,0.9", "comma-separated utilizations")
	modelsFlag := flag.String("models", "uniform", "comma-separated arrival models (uniform|poisson|bursty)")
	systemsFlag := flag.String("systems", "base,optimal,energy-centric,proposed", "comma-separated systems")
	predictor := flag.String("predictor", "ann", "predictor: ann|oracle|linear|knn|stump|tree")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	utils, err := parseFloats(*utilsFlag)
	if err != nil {
		return err
	}
	models, err := parseModels(*modelsFlag)
	if err != nil {
		return err
	}
	kind, err := hetsched.ParsePredictorKind(*predictor)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "setting up (%s predictor)...\n", kind)
	sys, err := hetsched.New(hetsched.Options{Predictor: kind})
	if err != nil {
		return err
	}

	points, err := sweep.Run(sys.Eval, sys.Energy, sys.Pred, sweep.Config{
		Arrivals:     *arrivals,
		Utilizations: utils,
		Models:       models,
		Systems:      strings.Split(*systemsFlag, ","),
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	return sweep.WriteCSV(os.Stdout, points)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad utilization %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseModels(s string) ([]core.ArrivalModel, error) {
	var out []core.ArrivalModel
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "uniform":
			out = append(out, core.ArrivalUniform)
		case "poisson":
			out = append(out, core.ArrivalPoisson)
		case "bursty":
			out = append(out, core.ArrivalBursty)
		default:
			return nil, fmt.Errorf("unknown arrival model %q", part)
		}
	}
	return out, nil
}
