// Command hetschedd is the scheduling-as-a-service daemon: it characterizes
// the benchmark suite, trains the configured predictor once, and then serves
// scheduling requests over HTTP through a bounded queue and a fixed worker
// pool (one simulator per worker at a time; see internal/server).
//
// Endpoints (JSON; see DESIGN.md for schemas):
//
//	POST /v1/predict                 {"kernel": "tblook"}
//	GET  /v1/predictor
//	POST /v1/predictor               {"spec": "ensemble:table,markov,ann"}
//	POST /v1/schedule                {"system": "proposed", "arrivals": 500, ...}
//	POST /v1/schedule/batch          {"jobs": [{"kernel": "tblook"}, ...], ...}
//	POST /v1/tune                    {"kernel": "tblook", "size_kb": 8}
//	POST /v1/cluster/schedule        {"nodes": "8*quad;8*16x2", "arrivals": 5000, ...}
//	POST /v1/cluster/schedule/batch  {"nodes": "8*quad", "jobs": [...], ...}
//	GET  /v1/cluster/status
//	GET  /v1/designspace
//	GET  /healthz
//	GET  /metrics
//
// A second, internal-only debug listener serves /debug/pprof/* and
// /debug/vars, e.g.:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile
//
// Usage:
//
//	hetschedd [-addr :8080] [-debug-addr :6060] [-workers 4] [-queue 64]
//	          [-timeout 2m] [-max-arrivals 20000] [-predictor ann] [-seed 42]
//	          [-j N] [-cache-dir auto] [-engine stream]
//	          [-faults mttf=5e6,recover=1e5,seed=1]
//	          [-cluster 4*quad] [-scorer hybrid]
//	          [-char-cache-entries 256] [-char-cache-ttl 15m]
//	          [-shed-highwater 0.75] [-shed-levels 8]
//
// -cluster and -scorer set the default topology and dispatcher scoring
// strategy for /v1/cluster requests that omit their own.
//
// -predictor takes a single kind or an ensemble spec
// ("ensemble:table,markov,ann"); POST /v1/predictor hot-swaps the active
// predictor without a restart (in-flight runs finish on the predictor they
// started with; a rejected spec leaves the old one live).
//
// The batch endpoints characterize kernel variants on demand through a
// serving tier — a bounded in-memory LRU (-char-cache-entries,
// -char-cache-ttl) with in-flight coalescing in front of the disk cache —
// and -shed-highwater/-shed-levels tune the priority-aware admission
// control that sheds low-priority work once the queue passes the
// high-water mark.
//
// -faults sets the daemon-wide default fault-injection plan: schedule
// requests inherit it unless they carry their own "faults" object, and
// /metrics reports the cumulative fault counters.
//
// Cold start characterizes the suite across -j workers; with -cache-dir
// auto (the default) the characterization persists under the user cache
// directory, so every restart after the first skips kernel replay and the
// daemon is serving in roughly the time ANN training takes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hetsched"
	"hetsched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetschedd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "API listen address")
	debugAddr := flag.String("debug-addr", ":6060", "pprof/expvar listen address (empty disables)")
	workers := flag.Int("workers", 4, "simulation worker pool size")
	queue := flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request service timeout, queue wait included")
	maxArrivals := flag.Int("max-arrivals", 20000, "largest workload one schedule request may ask for")
	spec := hetsched.DefaultPredictorSpec()
	flag.TextVar(&spec, "predictor", hetsched.DefaultPredictorSpec(),
		"best-size predictor: ann|oracle|linear|knn|stump|tree|table|markov|nn, or ensemble:kind[=weight],...")
	seed := flag.Int64("seed", 42, "predictor training seed")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel workers for characterization and training")
	cacheDir := flag.String("cache-dir", "auto", "persistent characterization cache: auto|off|<dir>")
	var engine hetsched.Engine
	flag.TextVar(&engine, "engine", hetsched.EngineStream, "cache simulation engine for cold-start characterization: stream|onepass|replay")
	faultsFlag := flag.String("faults", "off", "default fault-injection plan for schedule requests: off, or mttf=..,recover=..,permanent=..,stuck=..,noise=..,seed=..")
	clusterFlag := flag.String("cluster", "4*quad", "default cluster topology for /v1/cluster requests: ';'-joined node shapes with N* repetition")
	var scorer hetsched.ScorerKind
	flag.TextVar(&scorer, "scorer", hetsched.ScoreHybrid, "default cluster dispatcher scorer: hybrid|balance|energy|roundrobin")
	charEntries := flag.Int("char-cache-entries", 256, "in-memory characterization LRU size for batch requests (negative disables)")
	charTTL := flag.Duration("char-cache-ttl", 15*time.Minute, "in-memory characterization entry TTL (negative never expires)")
	shedHighWater := flag.Float64("shed-highwater", 0.75, "queue-depth fraction past which low-priority requests are shed (outside (0,1) disables)")
	shedLevels := flag.Int("shed-levels", 8, "admission-bar scale: priority needed to survive a full queue at maximum cost")
	flag.Parse()

	dir, err := hetsched.ResolveCacheDir(*cacheDir)
	if err != nil {
		return err
	}
	faults, err := hetsched.ParseFaultPlan(*faultsFlag)
	if err != nil {
		return err
	}
	clusterNodes, err := hetsched.ParseClusterSpec(*clusterFlag)
	if err != nil {
		return fmt.Errorf("-cluster: %w", err)
	}

	fmt.Fprintf(os.Stderr, "hetschedd: characterizing suite (%s engine) and training %s predictor...\n", engine, spec)
	start := time.Now()
	sys, err := hetsched.New(hetsched.Options{Spec: spec, Seed: *seed, Workers: *jobs, CacheDir: dir, Engine: engine, Faults: faults})
	if err != nil {
		return err
	}
	if faults.Enabled() {
		fmt.Fprintf(os.Stderr, "hetschedd: default fault plan: %s\n", faults)
	}
	fmt.Fprintf(os.Stderr, "hetschedd: setup done in %s (characterization cache: eval=%v train=%v)\n",
		time.Since(start).Round(time.Millisecond), sys.Setup.EvalFromCache, sys.Setup.TrainFromCache)

	srv, err := server.New(sys, server.Config{
		Addr:               *addr,
		DebugAddr:          *debugAddr,
		Workers:            *workers,
		QueueDepth:         *queue,
		RequestTimeout:     *timeout,
		MaxArrivals:        *maxArrivals,
		ClusterNodes:       clusterNodes,
		ClusterScorer:      scorer,
		CacheDir:           dir,
		Engine:             engine,
		CharCacheEntries:   *charEntries,
		CharCacheTTL:       *charTTL,
		AdmissionHighWater: *shedHighWater,
		ShedLevels:         *shedLevels,
	})
	if err != nil {
		return err
	}
	srv.Metrics().PublishExpvar()

	// SIGINT/SIGTERM drain gracefully: stop accepting, finish queued and
	// in-flight jobs, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "hetschedd: signal received, draining in-flight jobs...")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "hetschedd: shutdown: %v\n", err)
		}
	}()

	return srv.ListenAndServe()
}
