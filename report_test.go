package hetsched

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetsched/internal/fault"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestFormatScheduleGolden pins the schedule-timeline renderer byte-for-byte
// against a golden file: a fixed workload under a scripted fault plan must
// render the same interleaved executions, fault markers and [failed] tags on
// every run. Regenerate with `go test -run FormatScheduleGolden -update .`
// after an intentional format change.
func TestFormatScheduleGolden(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(40, 0.6, 31)
	if err != nil {
		t.Fatal(err)
	}
	sim := SimConfig{RecordSchedule: true}
	sim.Faults = fault.Plan{Script: []fault.Event{
		{Cycle: 1_000_000, Core: 1, Kind: fault.CrashTransient},
		{Cycle: 1_300_000, Core: 1, Kind: fault.Recover},
		{Cycle: 900_000, Core: 2, Kind: fault.StuckReconfig},
	}}
	m, err := sys.RunSystem("proposed", jobs, sim)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatSchedule(sys, m, 0) + "\n" + FormatMetrics(m)

	path := filepath.Join("testdata", "schedule_timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("schedule timeline drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden content itself must carry the fault markers the renderer
	// promises, so a regeneration cannot silently pin a fault-free timeline.
	for _, marker := range []string{"!! crash", "!! recover", "!! stuck", "[failed]", "fault events"} {
		if !strings.Contains(got, marker) {
			t.Errorf("timeline missing %q:\n%s", marker, got)
		}
	}
}
