package hetsched

// PredictorSpec supersedes PredictorKind as the predictor-selection
// vocabulary: a composable spec naming one predictor or a weighted
// ensemble of them, with the same full flag.Value / encoding.Text*
// round-trip contract the typed flags established. Every legacy kind name
// parses verbatim ("ann", "oracle", ...), so existing -predictor values
// and wire payloads keep working; the new grammar adds
//
//	ensemble:table,markov,ann        (uniform starting weights)
//	ensemble:table=2,markov,ann=0.5  (explicit relative weights)
//
// over the member vocabulary ann|oracle|linear|knn|stump|tree (the fixed
// trained kinds) plus table|markov|nn (the online low-cost learners; see
// internal/predict).

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hetsched/internal/ann"
	"hetsched/internal/core"
	"hetsched/internal/eembc"
	"hetsched/internal/mlbase"
	"hetsched/internal/predict"
)

// Extended predictor API re-exports (see internal/core/predictorapi.go).
type (
	// Vote is one ensemble member's ballot: name, size, weight, confidence.
	Vote = core.Vote
	// PredictorStats is a predictor's scorecard: prequential hit/regret
	// accounting with per-member detail (Metrics.Predictor).
	PredictorStats = core.PredictorStats
	// MemberStats is one ensemble member's scorecard within PredictorStats.
	MemberStats = core.MemberStats
)

// ensemblePrefix introduces the composite grammar.
const ensemblePrefix = "ensemble:"

// predictorKinds is the member vocabulary in presentation order.
var predictorKinds = []string{"ann", "oracle", "linear", "knn", "stump", "tree", "table", "markov", "nn"}

// onlineKinds are the members that learn from outcome feedback.
var onlineKinds = map[string]bool{"table": true, "markov": true, "nn": true}

func knownKind(kind string) bool {
	for _, k := range predictorKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// MemberSpec is one member of a PredictorSpec: a kind name and its
// relative starting weight (1 when unspecified).
type MemberSpec struct {
	Kind   string
	Weight float64
}

// PredictorSpec selects the predictor a System schedules with: a single
// kind or a weighted ensemble. The zero value is empty (IsZero) and makes
// Options fall back to the deprecated Options.Predictor field.
type PredictorSpec struct {
	Members []MemberSpec
}

// DefaultPredictorSpec returns the paper's predictor, the bagged ANN.
func DefaultPredictorSpec() PredictorSpec {
	return PredictorSpec{Members: []MemberSpec{{Kind: "ann", Weight: 1}}}
}

// IsZero reports the empty spec.
func (p PredictorSpec) IsZero() bool { return len(p.Members) == 0 }

// IsSingle reports whether the spec is exactly one member of the given
// kind (any weight — a single member's weight is immaterial).
func (p PredictorSpec) IsSingle(kind string) bool {
	return len(p.Members) == 1 && p.Members[0].Kind == kind
}

// Online reports whether any member learns from outcome feedback. Single
// fixed kinds ("ann", "oracle", ...) build the exact legacy predictor and
// are not online.
func (p PredictorSpec) Online() bool {
	if len(p.Members) == 1 {
		return onlineKinds[p.Members[0].Kind]
	}
	return len(p.Members) > 1 // every multi-member ensemble learns weights
}

// Validate checks the member vocabulary, weight positivity and name
// uniqueness.
func (p PredictorSpec) Validate() error {
	if len(p.Members) == 0 {
		return fmt.Errorf("hetsched: empty predictor spec")
	}
	seen := map[string]bool{}
	for _, m := range p.Members {
		if !knownKind(m.Kind) {
			return fmt.Errorf("hetsched: unknown predictor %q (want %s)", m.Kind, strings.Join(predictorKinds, "|"))
		}
		if seen[m.Kind] {
			return fmt.Errorf("hetsched: duplicate ensemble member %q", m.Kind)
		}
		seen[m.Kind] = true
		if !(m.Weight > 0) || math.IsInf(m.Weight, 0) {
			return fmt.Errorf("hetsched: member %q weight %v must be a positive finite number", m.Kind, m.Weight)
		}
	}
	return nil
}

// ParsePredictorSpec parses the -predictor vocabulary: every legacy kind
// name verbatim, or the ensemble grammar documented on PredictorSpec.
func ParsePredictorSpec(s string) (PredictorSpec, error) {
	if !strings.HasPrefix(s, ensemblePrefix) {
		if !knownKind(s) {
			return PredictorSpec{}, fmt.Errorf("hetsched: unknown predictor %q (want %s, or %s<members>)",
				s, strings.Join(predictorKinds, "|"), ensemblePrefix)
		}
		return PredictorSpec{Members: []MemberSpec{{Kind: s, Weight: 1}}}, nil
	}
	body := strings.TrimPrefix(s, ensemblePrefix)
	if body == "" {
		return PredictorSpec{}, fmt.Errorf("hetsched: empty ensemble spec %q", s)
	}
	var spec PredictorSpec
	for _, part := range strings.Split(body, ",") {
		kind, weightStr, hasWeight := strings.Cut(part, "=")
		m := MemberSpec{Kind: kind, Weight: 1}
		if hasWeight {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil {
				return PredictorSpec{}, fmt.Errorf("hetsched: ensemble member %q: bad weight %q", kind, weightStr)
			}
			m.Weight = w
		}
		spec.Members = append(spec.Members, m)
	}
	if err := spec.Validate(); err != nil {
		return PredictorSpec{}, err
	}
	return spec, nil
}

// MustParsePredictorSpec is ParsePredictorSpec for known-good literals
// (flag defaults, tests); it panics on a parse error.
func MustParsePredictorSpec(s string) PredictorSpec {
	spec, err := ParsePredictorSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the canonical form: the bare kind name for single-member
// specs of weight 1 (so legacy values round-trip verbatim), the ensemble
// grammar otherwise. Weights of 1 are omitted.
func (p PredictorSpec) String() string {
	if p.IsZero() {
		return ""
	}
	if len(p.Members) == 1 && p.Members[0].Weight == 1 {
		return p.Members[0].Kind
	}
	var b strings.Builder
	b.WriteString(ensemblePrefix)
	for i, m := range p.Members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(m.Kind)
		if m.Weight != 1 {
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(m.Weight, 'g', -1, 64))
		}
	}
	return b.String()
}

// Set implements flag.Value.
func (p *PredictorSpec) Set(s string) error {
	parsed, err := ParsePredictorSpec(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler; an invalid spec is an
// error rather than a silently serialized junk string.
func (p PredictorSpec) MarshalText() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler (flag.TextVar, JSON,
// config files).
func (p *PredictorSpec) UnmarshalText(text []byte) error {
	return p.Set(string(text))
}

// Spec lifts a legacy PredictorKind to its single-member PredictorSpec;
// out-of-range kinds error exactly as the old New switch did.
func (k PredictorKind) Spec() (PredictorSpec, error) {
	if k < PredictANN || k > PredictTree {
		return PredictorSpec{}, fmt.Errorf("hetsched: unknown predictor kind %d", int(k))
	}
	return PredictorSpec{Members: []MemberSpec{{Kind: k.String(), Weight: 1}}}, nil
}

// buildBasePredictor constructs one fixed trained kind — the exact objects
// the legacy PredictorKind switch built, so single-kind specs are
// bit-identical to pre-spec Systems.
func buildBasePredictor(kind string, eval, train *DB, seed int64, opts Options) (Predictor, error) {
	switch kind {
	case "ann":
		if opts.EnergyParams == nil && !opts.WithL2 && !opts.IncludeTelecom && seed == 42 {
			// Canonical setup: share the process-wide trained predictor.
			p, _, err := ann.DefaultPredictor()
			return p, err
		}
		p, _, err := ann.TrainSizePredictor(train, ann.PredictorConfig{Seed: seed, Workers: opts.Workers})
		return p, err
	case "oracle":
		return core.OraclePredictor{DB: eval}, nil
	case "linear":
		return mlbase.TrainLinear(train, 0)
	case "knn":
		return mlbase.TrainKNN(train, 3)
	case "stump":
		return mlbase.TrainStump(train)
	case "tree":
		return mlbase.TrainTree(train, 4)
	}
	return nil, fmt.Errorf("hetsched: unknown predictor %q", kind)
}

// buildPredictor constructs the predictor a spec names. Single fixed kinds
// return the legacy predictor objects unchanged; online kinds and
// multi-member specs build a predict.Ensemble wired for outcome feedback.
func buildPredictor(spec PredictorSpec, eval, train *DB, seed int64, opts Options) (Predictor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Members) == 1 && !onlineKinds[spec.Members[0].Kind] {
		return buildBasePredictor(spec.Members[0].Kind, eval, train, seed, opts)
	}
	members := make([]predict.Member, len(spec.Members))
	weights := make([]float64, len(spec.Members))
	for i, ms := range spec.Members {
		weights[i] = ms.Weight
		switch ms.Kind {
		case "table":
			members[i] = predict.NewTable()
		case "markov":
			members[i] = predict.NewMarkov()
		case "nn":
			members[i] = predict.NewNearest(0)
		default:
			p, err := buildBasePredictor(ms.Kind, eval, train, seed, opts)
			if err != nil {
				return nil, err
			}
			members[i] = predict.Wrap(ms.Kind, p)
		}
	}
	return predict.New(spec.String(), members, weights, 0)
}

// PredictorSpecValue reports the spec the System was built with (or
// hot-swapped to).
func (s *System) PredictorSpec() PredictorSpec { return s.spec }

// WithPredictorSpec returns a new System scheduling with the given spec,
// sharing the receiver's characterization DBs and energy model — the
// daemon's hot-swap path. The receiver is not modified; a failed build
// returns an error and no System, so the caller's active set stays live.
// Not supported on MultiDomainANN systems (their predictor is not
// spec-addressable).
func (s *System) WithPredictorSpec(spec PredictorSpec) (*System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.buildOpts.MultiDomainANN {
		return nil, fmt.Errorf("hetsched: hot-swap is not supported on MultiDomainANN systems")
	}
	pred, err := buildPredictor(spec, s.Eval, s.Train, s.buildSeed, s.buildOpts)
	if err != nil {
		return nil, err
	}
	ns := *s
	ns.spec = spec
	ns.Pred = pred
	return &ns, nil
}

// PredictDetail is the vote/confidence form of PredictBestSize: the
// prediction, the oracle, the energy regret of running the kernel at the
// predicted size (best energy at that size minus the global best), and —
// for vote-exposing predictors — the per-member ballots.
type PredictDetail struct {
	PredictedKB int
	OracleKB    int
	RegretNJ    float64
	Votes       []Vote // nil unless the predictor exposes votes
}

// PredictBestSizeDetail evaluates the predictor on a characterized
// benchmark's recorded features, like PredictBestSize, and additionally
// reports the prediction's energy regret and the member ballots behind it.
func (s *System) PredictBestSizeDetail(kernel string) (PredictDetail, error) {
	rec, err := s.Eval.Find(kernel, eembc.DefaultParams())
	if err != nil {
		return PredictDetail{}, err
	}
	predicted, err := s.Pred.PredictSizeKB(rec.Features)
	if err != nil {
		return PredictDetail{}, err
	}
	d := PredictDetail{PredictedKB: predicted, OracleKB: rec.BestSizeKB()}
	atSize, err := rec.BestConfigForSize(predicted)
	if err != nil {
		return PredictDetail{}, err
	}
	if r := atSize.Energy.Total - rec.BestConfig().Energy.Total; r > 0 {
		d.RegretNJ = r
	}
	if vp, ok := s.Pred.(core.VotingPredictor); ok {
		votes, err := vp.Votes(rec.Features)
		if err != nil {
			return PredictDetail{}, err
		}
		d.Votes = votes
	}
	return d, nil
}
