package hetsched

import (
	"strings"
	"testing"

	"hetsched/internal/characterize"
	"hetsched/internal/energy"
)

func oracleSystem(t testing.TB) *System {
	t.Helper()
	sys, err := New(Options{Predictor: PredictOracle})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewWithEveryPredictorKind(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors; skipped in -short")
	}
	for _, kind := range []PredictorKind{PredictANN, PredictOracle, PredictLinear, PredictKNN, PredictStump} {
		sys, err := New(Options{Predictor: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sys.PredictorName() != kind.String() {
			t.Errorf("predictor name %q != kind %q", sys.PredictorName(), kind)
		}
		pred, oracle, err := sys.PredictBestSize("matrix")
		if err != nil {
			t.Fatalf("%v: PredictBestSize: %v", kind, err)
		}
		if pred != 2 && pred != 4 && pred != 8 {
			t.Errorf("%v: predicted size %d not in design space", kind, pred)
		}
		if kind == PredictOracle && pred != oracle {
			t.Errorf("oracle disagrees with itself: %d vs %d", pred, oracle)
		}
	}
	if _, err := New(Options{Predictor: PredictorKind(99)}); err == nil {
		t.Error("unknown predictor kind accepted")
	}
}

// The paper's headline claims must hold with the actual trained ANN, not
// just the oracle predictor the core tests use.
func TestANNExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the ANN and runs four systems; skipped in -short")
	}
	sys, err := New(Options{Predictor: PredictANN})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 1500
	res, err := sys.Experiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, opt, ec, prop := res.Base, res.Optimal, res.EnergyCentric, res.Proposed

	// Proposed: the lowest total energy of all four systems.
	for _, m := range []Metrics{base, opt, ec} {
		if prop.TotalEnergy() >= m.TotalEnergy() {
			t.Errorf("ANN proposed total %.0f not below %s %.0f",
				prop.TotalEnergy(), m.System, m.TotalEnergy())
		}
	}
	saving := 1 - prop.TotalEnergy()/base.TotalEnergy()
	t.Logf("ANN-driven saving vs base: %.1f%% (paper: 28%%)", 100*saving)
	if saving < 0.10 {
		t.Errorf("ANN-driven saving %.1f%% collapsed", 100*saving)
	}
	// Energy-centric: lowest dynamic, and (with the ANN, as in the paper)
	// total energy above the base system.
	for _, m := range []Metrics{base, opt, prop} {
		if ec.DynamicEnergy >= m.DynamicEnergy {
			t.Errorf("energy-centric dynamic %.0f not lowest (vs %s %.0f)",
				ec.DynamicEnergy, m.System, m.DynamicEnergy)
		}
	}
	if ec.TotalEnergy() <= opt.TotalEnergy() {
		t.Errorf("with the ANN, energy-centric total %.0f should exceed optimal %.0f (paper: +9%%)",
			ec.TotalEnergy(), opt.TotalEnergy())
	}
	// Proposed beats both ANN-driven comparisons on turnaround.
	if prop.TurnaroundCycles >= ec.TurnaroundCycles {
		t.Errorf("proposed turnaround %d not below energy-centric %d",
			prop.TurnaroundCycles, ec.TurnaroundCycles)
	}
	if prop.TurnaroundCycles >= opt.TurnaroundCycles {
		t.Errorf("proposed turnaround %d not below optimal %d",
			prop.TurnaroundCycles, opt.TurnaroundCycles)
	}
}

func TestSystemExperimentAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment; skipped in -short")
	}
	sys := oracleSystem(t)
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 800
	res, err := sys.Experiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report := FormatFigures(res)
	for _, want := range []string{
		"Figure 6", "Figure 7", "base", "optimal", "energy-centric", "proposed",
		"total-energy reduction",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunSystemNames(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(200, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"base", "optimal", "energy-centric", "proposed", "proposed-noEadv"} {
		m, err := sys.RunSystem(name, jobs, SimConfig{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Completed != len(jobs) {
			t.Errorf("%s: completed %d of %d", name, m.Completed, len(jobs))
		}
		if m.System != name {
			t.Errorf("metrics name %q, want %q", m.System, name)
		}
	}
	if _, err := sys.RunSystem("nope", jobs, SimConfig{}); err == nil {
		t.Error("unknown system name accepted")
	}
}

func TestEadvAblationChangesBehaviour(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(600, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	withEadv, err := sys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := sys.RunSystem("proposed-noEadv", jobs, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if withEadv.StallDecisions == without.StallDecisions &&
		withEadv.NonBestPlacements == without.NonBestPlacements {
		t.Error("disabling E_adv changed nothing; ablation is vacuous")
	}
	// The greedy variant must not deliberately stall once knowledge exists;
	// its deliberate-stall count should be well below the full system's.
	if without.StallDecisions > withEadv.StallDecisions {
		t.Errorf("no-Eadv variant stalled more (%d) than the full system (%d)",
			without.StallDecisions, withEadv.StallDecisions)
	}
}

// Regression: RunSystem must not drop caller-set scheduling flags when it
// fills in the default machine.
func TestRunSystemPreservesRealtimeFlags(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(500, 1.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys.AssignPriorities(jobs, 3, 4)
	m, err := sys.RunSystem("proposed", jobs, SimConfig{
		PriorityScheduling: true,
		Preemptive:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions == 0 {
		t.Error("preemptive flag lost through RunSystem defaults")
	}
	if m.Completed != len(jobs) {
		t.Errorf("completed %d of %d", m.Completed, len(jobs))
	}
}

func TestAssignHelpers(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(100, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.AssignPriorities(jobs, 4, 1)
	if err := sys.AssignDeadlines(jobs, 5); err != nil {
		t.Fatal(err)
	}
	hasPriority, hasDeadline := false, true
	for _, j := range jobs {
		if j.Priority > 0 {
			hasPriority = true
		}
		if j.DeadlineCycle == 0 {
			hasDeadline = false
		}
	}
	if !hasPriority || !hasDeadline {
		t.Error("assign helpers did not annotate jobs")
	}
	if err := sys.AssignDeadlines(jobs, -1); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestIncludeTelecomExtendsPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("recharacterizes 20 kernels; skipped in -short")
	}
	sys, err := New(Options{Predictor: PredictOracle, IncludeTelecom: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Eval.Records); got != 20 {
		t.Fatalf("extended eval pool has %d records, want 20", got)
	}
	if got := len(sys.Train.Records); got != 20*6 {
		t.Fatalf("extended train pool has %d records, want 120", got)
	}
	// The telecom kernels must be schedulable end to end.
	pred, oracle, err := sys.PredictBestSize("viterb")
	if err != nil {
		t.Fatal(err)
	}
	if pred != oracle {
		t.Errorf("oracle disagrees with itself: %d vs %d", pred, oracle)
	}
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 400
	res, err := sys.Experiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposed.Completed != cfg.Arrivals {
		t.Errorf("proposed completed %d of %d over the extended population",
			res.Proposed.Completed, cfg.Arrivals)
	}
}

func TestMultiDomainANNOption(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two ensembles; skipped in -short")
	}
	// Validation: requires IncludeTelecom + PredictANN.
	if _, err := New(Options{Predictor: PredictANN, MultiDomainANN: true}); err == nil {
		t.Error("MultiDomainANN without IncludeTelecom accepted")
	}
	if _, err := New(Options{Predictor: PredictOracle, IncludeTelecom: true, MultiDomainANN: true}); err == nil {
		t.Error("MultiDomainANN with non-ANN predictor accepted")
	}
	sys, err := New(Options{Predictor: PredictANN, IncludeTelecom: true, MultiDomainANN: true})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range sys.Eval.Records {
		got, err := sys.Pred.PredictSizeKB(sys.Eval.Records[i].Features)
		if err != nil {
			t.Fatal(err)
		}
		if got == sys.Eval.Records[i].BestSizeKB() {
			hits++
		}
	}
	acc := float64(hits) / float64(len(sys.Eval.Records))
	t.Logf("multi-domain facade accuracy: %.2f", acc)
	if acc < 0.5 {
		t.Errorf("multi-domain accuracy %.2f too low", acc)
	}
}

func TestWithL2ChangesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("recharacterizes the suite; skipped in -short")
	}
	l1, err := New(Options{Predictor: PredictOracle})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := New(Options{Predictor: PredictOracle, WithL2: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(s *System) int {
		total := 0
		for i := range s.Eval.Records {
			total += s.Eval.Records[i].BestSizeKB()
		}
		return total
	}
	if sum(l2) > sum(l1) {
		t.Errorf("L2 extension shifted best sizes upward: %d -> %d", sum(l1), sum(l2))
	}
	// The L2-aware system must run the full experiment pipeline.
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 300
	if _, err := l2.Experiment(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDesignSpaceHelpers(t *testing.T) {
	if len(DesignSpace()) != 18 {
		t.Error("design space is not Table 1")
	}
	if BaseConfig().String() != "8KB_4W_64B" {
		t.Errorf("base config = %s", BaseConfig())
	}
	c, err := ParseCacheConfig("4kb_2w_32b")
	if err != nil || c.SizeKB != 4 {
		t.Errorf("ParseCacheConfig: %v %v", c, err)
	}
	if len(Kernels()) != 16 {
		t.Error("kernel suite incomplete")
	}
	if _, err := KernelByName("matrix"); err != nil {
		t.Error(err)
	}
	table := FormatDesignSpace()
	if !strings.Contains(table, "8KB_4W_64B") || !strings.Contains(table, "2KB_1W_16B") {
		t.Error("design-space table incomplete")
	}
}

func TestWorkloadFacade(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(100, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 100 {
		t.Errorf("workload has %d jobs", len(jobs))
	}
	if _, err := sys.Workload(100, 0, 1); err == nil {
		t.Error("zero utilization accepted")
	}
}

func TestPredictBestSizeUnknownKernel(t *testing.T) {
	sys := oracleSystem(t)
	if _, _, err := sys.PredictBestSize("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFormatPerApp(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(200, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Attribution must partition the busy (non-idle, non-overhead) energy.
	var attributed float64
	runs := 0
	for app, e := range m.PerAppEnergy {
		attributed += e
		runs += m.PerAppRuns[app]
	}
	busy := m.DynamicEnergy + m.StaticEnergy + m.CoreEnergy
	if diff := attributed - busy; diff > 1e-6*busy || diff < -1e-6*busy {
		t.Errorf("per-app energy %v does not partition busy energy %v", attributed, busy)
	}
	if runs != m.Completed {
		t.Errorf("per-app runs %d != completed %d", runs, m.Completed)
	}
	out := FormatPerApp(sys, m)
	for _, want := range []string{"per-benchmark energy", "nJ/run"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatPerApp missing %q", want)
		}
	}
	// Every kernel that ran must appear by name, not app-N.
	if strings.Contains(out, "app-") {
		t.Errorf("FormatPerApp fell back to numeric app ids:\n%s", out)
	}
}

func TestFormatSchedule(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(60, 0.6, 31)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.RunSystem("proposed", jobs, SimConfig{RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSchedule(sys, m, 10)
	if !strings.Contains(out, "core") || !strings.Contains(out, "[profiling]") {
		t.Errorf("timeline missing expected content:\n%s", out)
	}
	if !strings.Contains(out, "more") {
		t.Errorf("timeline truncation marker missing for %d events", len(m.Schedule))
	}
}

func TestFormatMetricsMentionsEverything(t *testing.T) {
	sys := oracleSystem(t)
	jobs, err := sys.Workload(150, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMetrics(m)
	for _, want := range []string{"makespan", "turnaround", "idle", "dynamic", "static", "profiling", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatMetrics missing %q:\n%s", want, out)
		}
	}
}

// TestNewWarmStartFromCache is the end-to-end acceptance test for the
// persistent characterization cache: with a pre-warmed cache directory,
// New must load both DBs from disk (Setup flags set) without replaying a
// single kernel.
func TestNewWarmStartFromCache(t *testing.T) {
	dir := t.TempDir()
	em := energy.NewDefault()

	// Pre-warm the directory from the process-wide DBs — the same content
	// New characterizes — so the only open question is whether New takes
	// the loader path.
	for _, tc := range []struct {
		variants []characterize.Variant
		build    func() (*characterize.DB, error)
	}{
		{characterize.CanonicalVariants(), characterize.Default},
		{characterize.AugmentedVariants(), characterize.Augmented},
	} {
		key, err := characterize.CacheKey(tc.variants, em, characterize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		if err := characterize.SaveCached(dir, key, db); err != nil {
			t.Fatal(err)
		}
	}

	before := characterize.ReplayCount()
	sys, err := New(Options{Predictor: PredictOracle, CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Setup.EvalFromCache || !sys.Setup.TrainFromCache {
		t.Fatalf("warm start not detected: %+v", sys.Setup)
	}
	if got := characterize.ReplayCount(); got != before {
		t.Fatalf("warm start replayed kernels: ReplayCount %d -> %d", before, got)
	}
	if _, _, err := sys.PredictBestSize("matrix"); err != nil {
		t.Fatalf("warm-started system does not serve predictions: %v", err)
	}
}

// TestResolveCacheDir pins the -cache-dir flag vocabulary shared by every
// CLI.
func TestResolveCacheDir(t *testing.T) {
	for _, off := range []string{"", "off", "none"} {
		dir, err := ResolveCacheDir(off)
		if err != nil || dir != "" {
			t.Errorf("ResolveCacheDir(%q) = %q, %v; want disabled", off, dir, err)
		}
	}
	dir, err := ResolveCacheDir("auto")
	if err != nil {
		t.Fatalf("ResolveCacheDir(auto): %v", err)
	}
	if dir == "" {
		t.Error("auto resolved to the disabled cache")
	}
	dir, err = ResolveCacheDir("/tmp/explicit")
	if err != nil || dir != "/tmp/explicit" {
		t.Errorf("explicit path mangled: %q, %v", dir, err)
	}
}

// TestFlagTextRoundTrip covers the flag.Value / encoding.TextMarshaler
// surface that cmd/* bind via flag.TextVar: every valid vocabulary word
// round-trips, and out-of-range values refuse to marshal.
func TestFlagTextRoundTrip(t *testing.T) {
	for _, want := range []PredictorKind{PredictANN, PredictOracle, PredictLinear, PredictKNN, PredictStump, PredictTree} {
		text, err := want.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", want, err)
		}
		var got PredictorKind
		if err := got.UnmarshalText(text); err != nil || got != want {
			t.Errorf("predictor round trip %q -> %v, err %v", text, got, err)
		}
		var viaSet PredictorKind
		if err := viaSet.Set(string(text)); err != nil || viaSet != want {
			t.Errorf("predictor Set(%q) -> %v, err %v", text, viaSet, err)
		}
	}
	var k PredictorKind
	if err := k.Set("nosuch"); err == nil {
		t.Error("unknown predictor accepted")
	}
	if _, err := PredictorKind(99).MarshalText(); err == nil {
		t.Error("out-of-range predictor marshaled")
	}

	for _, want := range []Engine{EngineStream, EngineOnePass, EngineReplay} {
		text, err := want.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", want, err)
		}
		var got Engine
		if err := got.UnmarshalText(text); err != nil || got != want {
			t.Errorf("engine round trip %q -> %v, err %v", text, got, err)
		}
	}
	var e Engine
	if err := e.Set("nosuch"); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Engine(99).MarshalText(); err == nil {
		t.Error("out-of-range engine marshaled")
	}
}

// TestParseFaultPlanFacade spot-checks the facade's fault-plan parser and
// the Options-level default inheritance.
func TestParseFaultPlanFacade(t *testing.T) {
	if p, err := ParseFaultPlan("off"); err != nil || p.Enabled() {
		t.Errorf("off -> %+v, err %v", p, err)
	}
	p, err := ParseFaultPlan("mttf=5e6,recover=1e5,seed=9")
	if err != nil || !p.Enabled() || p.TransientMTTF != 5_000_000 {
		t.Errorf("parsed plan %+v, err %v", p, err)
	}
	if _, err := ParseFaultPlan("noise=2"); err == nil {
		t.Error("out-of-range noise accepted")
	}
	if _, err := New(Options{Predictor: PredictOracle, Faults: FaultPlan{CounterNoise: 7}}); err == nil {
		t.Error("New accepted an invalid fault plan")
	}
}
