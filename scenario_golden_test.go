package hetsched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scenarioGoldenSpec is the golden scenario: a bursty stream with a
// tight-slack high-priority class, chosen (with its seed) so the proposed
// system's run contains at least one SLO-forced migration — the timeline
// marker this golden exists to pin.
const scenarioGoldenSpec = "bursty:rate=0.4,burst=2,quiet=0.5,jobs=200;slo=deadline:slack=6,classes=hi@0.3@1.15"

// TestScenarioTimelineGolden pins the scenario path end to end, byte for
// byte: spec parse -> workload generation -> SLO-aware simulation ->
// FormatSchedule with [slo-migrated] markers -> FormatMetrics with the
// deadline/per-class block. Regenerate with
// `go test -run ScenarioTimelineGolden -update .` after an intentional
// format change.
func TestScenarioTimelineGolden(t *testing.T) {
	sys := oracleSystem(t)
	sp := MustParseScenarioSpec(scenarioGoldenSpec)
	jobs, err := sys.ScenarioWorkload(sp, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sim SimConfig
	sp.ApplySim(&sim)
	sim.RecordSchedule = true
	m, err := sys.RunSystem("proposed", jobs, sim)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatSchedule(sys, m, 0) + "\n" + FormatMetrics(m)

	path := filepath.Join("testdata", "scenario_timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("scenario timeline drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden content must carry the scenario markers it exists to pin,
	// so a regeneration cannot silently pin a run where the SLO rule never
	// fired or the deadline accounting vanished.
	for _, marker := range []string{"[slo-migrated]", "deadlines:", "slo-forced migrations", "class hi", "class default"} {
		if !strings.Contains(got, marker) {
			t.Errorf("scenario timeline missing %q", marker)
		}
	}
	if m.SLOMigrations == 0 {
		t.Error("golden scenario run has no SLO migrations; pick a new (spec, seed)")
	}
}
