# Convenience targets for the hetsched reproduction.

GO ?= go

.PHONY: all check build vet lint test test-short test-race bench bench-baseline bench-gate profile cover cover-check fuzz reproduce serve loadtest sweep clean

all: check

# The default gate: compile, vet + staticcheck, full test suite, and the
# concurrency subsystem under the race detector.
check: build lint test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (CI installs
# it, local builds are not forced to).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Every package with a worker pool or parallel fan-out runs under the race
# detector: the daemon's queue/shutdown paths, the stats sketch behind its
# metrics, the parallel characterization engine and its disk cache, the
# sweep grid, the ensemble trainer/vote, the online predictor ensemble,
# and the cluster's per-node simulation pool. The scenario package rides
# along so its generators' determinism contract holds under the detector.
# The root-package run pins the ensemble's worker-count-invariant
# determinism under the detector.
test-race:
	$(GO) test -race ./internal/server/... ./internal/stats/... \
		./internal/characterize/... ./internal/sweep/... ./internal/ann/... \
		./internal/cluster/... ./internal/predict/... ./internal/scenario/...
	$(GO) test -race -run 'TestEnsembleDeterminism' .

test-short:
	$(GO) test -short ./...

# Regenerate every paper table/figure plus the ablations and extensions.
bench:
	$(GO) test -bench=. -benchmem .

# Snapshot the hot-path microbenchmarks (L1 access, the one-pass multi-config
# simulator vs per-config replay, characterization at 1-8 workers and on both
# engines, kernel trace recording, kernel execution, one proposed-system
# simulation, ANN forward pass, the cluster dispatcher's routing pass, and
# the daemon's warm batch serving path) as committed JSON, for before/after
# comparison across PRs.
bench-baseline:
	$(GO) test -run=NONE -bench='BenchmarkL1Access|BenchmarkHierarchyAccess|BenchmarkMultiSim|BenchmarkReplayAllConfigs|BenchmarkCharacterizeWorkers|BenchmarkCharacterizeOneKernel|BenchmarkRecordTrace|BenchmarkKernelExecution|BenchmarkProposedSimulation|BenchmarkForward|BenchmarkClusterDispatch|BenchmarkServerScheduleWarm|BenchmarkEnsemblePredict' \
		-benchmem ./internal/cache/ ./internal/characterize/ ./internal/eembc/ ./internal/core/ ./internal/ann/ ./internal/cluster/ ./internal/server/ ./internal/predict/ \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

# The CI bench-regression gate: rerun the baseline suite, convert it with
# benchjson, and compare against the committed BENCH_core.json. The tolerance
# is generous because shared CI runners are noisy; a genuine regression on the
# characterization hot path overshoots it anyway. Tune with
# `make bench-gate BENCH_TOLERANCE=0.15`.
BENCH_TOLERANCE ?= 0.40

bench-gate:
	$(GO) test -run=NONE -bench='BenchmarkL1Access|BenchmarkHierarchyAccess|BenchmarkMultiSim|BenchmarkReplayAllConfigs|BenchmarkCharacterizeWorkers|BenchmarkCharacterizeOneKernel|BenchmarkRecordTrace|BenchmarkKernelExecution|BenchmarkProposedSimulation|BenchmarkForward|BenchmarkClusterDispatch|BenchmarkServerScheduleWarm|BenchmarkEnsemblePredict' \
		-benchmem ./internal/cache/ ./internal/characterize/ ./internal/eembc/ ./internal/core/ ./internal/ann/ ./internal/cluster/ ./internal/server/ ./internal/predict/ \
		| $(GO) run ./cmd/benchjson > bench-fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH_core.json bench-fresh.json -tolerance $(BENCH_TOLERANCE)

# Reproducible profiling workflow for the characterization hot path: CPU and
# heap profiles from the fused-engine benchmark, ready for
# `go tool pprof cpu.out`. EXPERIMENTS.md documents reading them and the
# live-daemon variant (pprof on :6060 under hetschedbench load).
profile:
	$(GO) test -run=NONE -bench='BenchmarkCharacterizeOneKernel$$|BenchmarkCharacterizeWorkers' \
		-benchtime 200x -cpuprofile cpu.out -memprofile mem.out ./internal/characterize/
	@echo "wrote cpu.out and mem.out; inspect with: $(GO) tool pprof -top cpu.out"

# Full-suite coverage profile + per-function summary (coverage.out is an
# artifact, not a commit; CI uploads it).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Enforce the checked-in minimum total coverage (COVERAGE_FLOOR). Raise the
# floor when coverage durably improves; never lower it to merge.
cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $$NF); print $$NF }'); \
	floor=$$(cat COVERAGE_FLOOR); \
	echo "total coverage $${total}% (floor $${floor}%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: coverage $${total}% fell below the $${floor}% floor"; exit 1; }

# Short fuzz pass over the untrusted-input parsers: cache-config specs, the
# text assembler, binary memory traces, -faults plan specs, CSV traces,
# -predictor ensemble specs, and -scenario workload specs.
fuzz:
	$(GO) test ./internal/cache -fuzz FuzzParseConfig -fuzztime 20s
	$(GO) test ./internal/isa -fuzz FuzzAssemble -fuzztime 20s
	$(GO) test ./internal/vm -fuzz FuzzLoadTrace -fuzztime 20s
	$(GO) test ./internal/fault -fuzz FuzzParseSpec -fuzztime 20s
	$(GO) test ./internal/trace -fuzz FuzzTraceFile -fuzztime 20s
	$(GO) test . -run=NONE -fuzz FuzzParsePredictorSpec -fuzztime 20s
	$(GO) test ./internal/scenario -run=NONE -fuzz FuzzParseScenarioSpec -fuzztime 20s

# The paper's full evaluation (Figures 6 & 7 at 5000 arrivals).
reproduce:
	$(GO) run ./cmd/hmsim -arrivals 5000

# Run the scheduling daemon on the default ports (API :8080, pprof :6060).
serve:
	$(GO) run ./cmd/hetschedd

# Hammer an in-process daemon: 256 requests, 64 in flight, 4 workers.
loadtest:
	$(GO) run ./cmd/hetschedbench -requests 256 -concurrency 64 -workers 4

sweep:
	$(GO) run ./cmd/hmsweep -arrivals 1500 > sweep.csv
	@echo wrote sweep.csv

clean:
	$(GO) clean ./...
