# Convenience targets for the hetsched reproduction.

GO ?= go

.PHONY: all build vet test test-short bench cover fuzz reproduce sweep clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Regenerate every paper table/figure plus the ablations and extensions.
bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -cover ./internal/...

# Short fuzz pass over the three untrusted-input parsers.
fuzz:
	$(GO) test ./internal/cache -fuzz FuzzParseConfig -fuzztime 20s
	$(GO) test ./internal/isa -fuzz FuzzAssemble -fuzztime 20s
	$(GO) test ./internal/vm -fuzz FuzzLoadTrace -fuzztime 20s

# The paper's full evaluation (Figures 6 & 7 at 5000 arrivals).
reproduce:
	$(GO) run ./cmd/hmsim -arrivals 5000

sweep:
	$(GO) run ./cmd/hmsweep -arrivals 1500 > sweep.csv
	@echo wrote sweep.csv

clean:
	$(GO) clean ./...
