package hetsched

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hetsched/internal/fault"
)

// traceGoldenSeparator splits the golden file into its Chrome JSON and CSV
// sections; both renderings of the same run are pinned in one file.
const traceGoldenSeparator = "--- csv ---\n"

// tracedGoldenRun executes the golden workload (the same 40-arrival,
// seed-31 run under the scripted fault plan that schedule_timeline.golden
// pins) with the decision-audit recorder attached.
func tracedGoldenRun(t testing.TB, sys *System) []TraceEvent {
	t.Helper()
	jobs, err := sys.Workload(40, 0.6, 31)
	if err != nil {
		t.Fatal(err)
	}
	sim := SimConfig{Trace: NewTraceRecorder()}
	sim.Faults = fault.Plan{Script: []fault.Event{
		{Cycle: 1_000_000, Core: 1, Kind: fault.CrashTransient},
		{Cycle: 1_300_000, Core: 1, Kind: fault.Recover},
		{Cycle: 900_000, Core: 2, Kind: fault.StuckReconfig},
	}}
	if _, err := sys.RunSystem("proposed", jobs, sim); err != nil {
		t.Fatal(err)
	}
	return sim.Trace.Events()
}

// TestTraceExportersGolden pins both trace exporters byte-for-byte: the
// Chrome trace-event JSON (the -trace file.json / Perfetto format) and the
// flat CSV of the same faulted run. Regenerate with
// `go test -run TraceExportersGolden -update .` after an intentional format
// change.
func TestTraceExportersGolden(t *testing.T) {
	sys := oracleSystem(t)
	events := tracedGoldenRun(t, sys)

	var chrome, csv bytes.Buffer
	if err := WriteTraceChrome(&chrome, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceCSV(&csv, events); err != nil {
		t.Fatal(err)
	}
	got := chrome.String() + traceGoldenSeparator + csv.String()

	path := filepath.Join("testdata", "trace_timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace exporters drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The Chrome section must be loadable as trace-event JSON — valid JSON,
	// the traceEvents array, complete ("X") events carrying durations and
	// instant ("i") events carrying the thread scope — so a regeneration
	// cannot silently pin a file Perfetto would refuse.
	if !json.Valid(chrome.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Ph    string  `json:"ph"`
			Dur   *uint64 `json:"dur"`
			Scope string  `json:"s"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) <= len(events) {
		t.Errorf("chrome export has %d records for %d events (metadata missing?)", len(doc.TraceEvents), len(events))
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				t.Errorf("complete event %q without dur", ev.Name)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("instant event %q without thread scope", ev.Name)
			}
		case "M":
		default:
			t.Errorf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}

	// The golden content must carry the faulted run's audit markers, so a
	// regeneration cannot pin a fault-free or decision-free trace.
	for _, marker := range []string{"crash", "stuck", "recover", "kill", "tune", "predict", "complete", "features=["} {
		if !strings.Contains(got, marker) {
			t.Errorf("golden trace missing %q", marker)
		}
	}

	// The CSV section must round-trip through the reader to the exact
	// event stream it was written from.
	back, err := ReadTraceCSV(strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Error("CSV section does not round-trip to the recorded events")
	}
}

// TestTraceWorkerCountInvariant pins the tentpole's parallelism contract:
// the recorded event stream is identical whether the system was built with
// one setup worker or eight — characterization/training parallelism must
// never leak into the decision audit.
func TestTraceWorkerCountInvariant(t *testing.T) {
	sys1, err := New(Options{Predictor: PredictOracle, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys8, err := New(Options{Predictor: PredictOracle, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ev1 := tracedGoldenRun(t, sys1)
	ev8 := tracedGoldenRun(t, sys8)
	if !reflect.DeepEqual(ev1, ev8) {
		t.Fatalf("trace differs between -j 1 (%d events) and -j 8 (%d events)", len(ev1), len(ev8))
	}
}

// TestTraceEngineInvariant extends the same contract across characterization
// engines: the decision audit of a run must be identical whether the system
// characterized its kernels with the fused streaming engine, the one-pass
// trace engine, or the replay reference. The engines are proven bit-identical
// at the characterization layer; this pins that nothing downstream (predictor
// training, scheduling, fault handling) observes the difference either.
func TestTraceEngineInvariant(t *testing.T) {
	var base []TraceEvent
	for _, eng := range []Engine{EngineStream, EngineOnePass, EngineReplay} {
		sys, err := New(Options{Predictor: PredictOracle, Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		ev := tracedGoldenRun(t, sys)
		if base == nil {
			base = ev
			continue
		}
		if !reflect.DeepEqual(base, ev) {
			t.Fatalf("trace differs between %v (%d events) and %v (%d events)",
				EngineStream, len(base), eng, len(ev))
		}
	}
}
