// Policy comparison: run all five scheduling strategies — the paper's four
// systems plus the never-stall ablation — over one identical workload and
// tabulate the trade-offs, reproducing Section VI's closing observation that
// neither "never stall" nor "always stall" wins; the energy-advantageous
// decision does.
//
//	go run ./examples/policycompare [-util 0.9]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)
	util := flag.Float64("util", 0.9, "offered load")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "setting up (characterization + ANN training)...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictANN})
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := sys.Workload(2000, *util, 11)
	if err != nil {
		log.Fatal(err)
	}

	systems := []string{"base", "optimal", "sat", "energy-centric", "proposed-noEadv", "proposed"}
	results := make([]hetsched.Metrics, 0, len(systems))
	for _, name := range systems {
		m, err := sys.RunSystem(name, jobs, hetsched.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, m)
	}

	base := results[0]
	fmt.Printf("%d arrivals at utilization %.2f\n\n", len(jobs), *util)
	fmt.Printf("%-16s %9s %9s %9s %9s %9s %8s\n",
		"system", "total", "idle", "dynamic", "cycles", "stalls", "nonbest")
	for _, m := range results {
		fmt.Printf("%-16s %8.3fx %8.3fx %8.3fx %8.3fx %9d %8d\n",
			m.System,
			m.TotalEnergy()/base.TotalEnergy(),
			m.IdleEnergy/base.IdleEnergy,
			m.DynamicEnergy/base.DynamicEnergy,
			float64(m.TurnaroundCycles)/float64(base.TurnaroundCycles),
			m.StallDecisions, m.NonBestPlacements)
	}
	fmt.Println("\n(all columns normalized to the base system; lower is better)")
}
