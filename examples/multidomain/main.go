// Multi-domain scheduling (Section IV.D): "for diverse systems executing
// different application domains, the scheduler could have multiple ANNs
// each of which would be specialized for a different domain." This example
// extends the population with the four telecom kernels and contrasts a
// single ANN trained on the mixed pool against per-domain ANNs behind a
// nearest-sample router.
//
//	go run ./examples/multidomain
package main

import (
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)

	fmt.Fprintln(os.Stderr, "training single mixed-domain ANN (20 kernels)...")
	single, err := hetsched.New(hetsched.Options{
		Predictor:      hetsched.PredictANN,
		IncludeTelecom: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "training per-domain ANNs + router...")
	multi, err := hetsched.New(hetsched.Options{
		Predictor:      hetsched.PredictANN,
		IncludeTelecom: true,
		MultiDomainANN: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	score := func(sys *hetsched.System) (acc float64) {
		hits := 0
		for i := range sys.Eval.Records {
			r := &sys.Eval.Records[i]
			got, err := sys.Pred.PredictSizeKB(r.Features)
			if err != nil {
				log.Fatal(err)
			}
			if got == r.BestSizeKB() {
				hits++
			}
		}
		return float64(hits) / float64(len(sys.Eval.Records))
	}

	fmt.Printf("best-size accuracy over 20 kernels (16 automotive + 4 telecom):\n")
	fmt.Printf("  single mixed ANN:        %.2f\n", score(single))
	fmt.Printf("  per-domain ANNs + router: %.2f\n", score(multi))

	// The predictors also drive the scheduler end to end.
	jobs, err := multi.Workload(1200, 0.85, 17)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range []struct {
		name string
		sys  *hetsched.System
	}{
		{"single ANN ", single},
		{"multi-domain", multi},
	} {
		m, err := row.sys.RunSystem("proposed", jobs, hetsched.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("proposed system with %s: total %.1f mJ, turnaround %d Mcycles\n",
			row.name, m.TotalEnergy()/1e6, m.TurnaroundCycles/1_000_000)
	}
}
