// Service example: run the hetschedd scheduling service in-process, submit
// a mixed EEMBC workload over its HTTP API the way a remote client would,
// and print the returned metrics — the smallest end-to-end tour of the
// daemon's client path (health check, prediction, scheduling, metrics).
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"hetsched"
	"hetsched/internal/server"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the shared System once (the oracle predictor skips ANN
	// training; use hetsched.PredictANN for the paper's predictor) and wrap
	// it in the service. The System is immutable, so the 2-worker pool
	// shares it read-only.
	fmt.Fprintln(os.Stderr, "characterizing suite and starting in-process daemon...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictOracle})
	if err != nil {
		return err
	}
	srv, err := server.New(sys, server.Config{
		Workers:    2,
		QueueDepth: 8,
		Logger:     log.New(io.Discard, "", 0),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: time.Minute}
	get := func(path string, out any) error {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(out)
	}
	post := func(path string, req, out any) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("%s: %s: %s", path, resp.Status, b)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	var health server.HealthResponse
	if err := get("/healthz", &health); err != nil {
		return err
	}
	fmt.Printf("daemon up: predictor=%s workers=%d queue=%d\n\n",
		health.Predictor, health.Workers, health.QueueCapacity)

	// Ask the service for one kernel's best cache size.
	var pred server.PredictResponse
	if err := post("/v1/predict", server.PredictRequest{Kernel: "tblook"}, &pred); err != nil {
		return err
	}
	fmt.Printf("predict tblook: best size %dKB (oracle %dKB)\n\n", pred.PredictedKB, pred.OracleKB)

	// Schedule an engine-management-heavy automotive mix: table lookups and
	// angle-to-time conversion dominate, with some CAN bit manipulation.
	mix := server.ScheduleRequest{
		System:      "proposed",
		Arrivals:    600,
		Utilization: 0.9,
		Seed:        7,
		Kernels: []string{
			"tblook", "tblook", "tblook",
			"a2time", "a2time",
			"canrdr",
			"rspeed",
		},
	}
	var m server.ScheduleResponse
	if err := post("/v1/schedule", mix, &m); err != nil {
		return err
	}
	fmt.Printf("scheduled %d arrivals on the %s system:\n", m.Jobs, m.System)
	fmt.Printf("  completed:        %d\n", m.Completed)
	fmt.Printf("  makespan:         %d cycles\n", m.MakespanCycles)
	fmt.Printf("  turnaround p50:   %d cycles\n", m.TurnaroundP50)
	fmt.Printf("  turnaround p95:   %d cycles\n", m.TurnaroundP95)
	fmt.Printf("  total energy:     %.0f nJ (idle %.0f, dynamic %.0f)\n",
		m.TotalEnergyNJ, m.IdleEnergyNJ, m.DynamicEnergyNJ)
	fmt.Printf("  profiling runs:   %d   stalls: %d deliberate, %d resource\n\n",
		m.ProfilingRuns, m.StallDecisions, m.ResourceStalls)

	// The daemon's own service metrics, as an operator would read them.
	var snap server.Snapshot
	if err := get("/metrics", &snap); err != nil {
		return err
	}
	ep := snap.Endpoints["schedule"]
	fmt.Printf("service metrics: %d requests, schedule p95 %.1fms, queue rejected %d\n",
		snap.Requests, ep.P95Ms, snap.JobsRejected)

	// Drain gracefully, as the daemon does on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
