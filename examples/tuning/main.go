// Tuning walkthrough: for each benchmark, contrast exhaustive design-space
// search (18 configurations) with the Figure 5 heuristic (at most
// associativities + line sizes - 1 per core), showing that the heuristic
// lands on or near the per-core best while executing a fraction of the
// configurations — the paper's Section VI efficiency result.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)

	fmt.Fprintln(os.Stderr, "characterizing suite...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictOracle})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 5 tuning heuristic vs exhaustive search, per benchmark:")
	fmt.Printf("%-8s %28s %28s %28s\n", "", "2KB core", "4KB core", "8KB core")
	totalExplored, totalConfigs := 0, 0
	worst := 0
	for _, k := range hetsched.Kernels() {
		fmt.Printf("%-8s", k.Name)
		for _, size := range []int{2, 4, 8} {
			explored, best, err := sys.TuneKernel(k.Name, size)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" (%d steps -> %-10s)", len(explored), best)
			totalExplored += len(explored)
			totalConfigs += len(hetsched.DesignSpace())
			if len(explored) > worst {
				worst = len(explored)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nheuristic explored %d configurations where exhaustive search would execute %d\n",
		totalExplored, totalConfigs)
	fmt.Printf("worst case per core: %d (paper observed no benchmark above 6)\n", worst)
}
