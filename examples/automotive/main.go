// Automotive scenario: the workload mix the paper's introduction motivates —
// an engine-management ECU dominated by crank-synchronous tasks (a2time,
// ttsprk, puwmod, rspeed) with periodic signal processing (aifirf, iirflt)
// and occasional diagnostics (canrdr, tblook). The mix is deliberately
// skewed toward small-cache kernels, so the heterogeneous system's 2 KB and
// 4 KB cores earn their keep.
//
//	go run ./examples/automotive
package main

import (
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)

	fmt.Fprintln(os.Stderr, "setting up (characterization + ANN training)...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictANN})
	if err != nil {
		log.Fatal(err)
	}

	// Weight by repetition: crank-synchronous tasks fire most often.
	mix := []string{
		"a2time", "a2time", "a2time",
		"ttsprk", "ttsprk", "ttsprk",
		"puwmod", "puwmod",
		"rspeed", "rspeed",
		"aifirf", "iirflt",
		"canrdr", "tblook",
	}
	jobs, err := sys.WeightedWorkload(mix, 2000, 0.7, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("automotive mix: %d arrivals over %d task types\n\n", len(jobs), len(mix))

	for _, name := range []string{"base", "proposed"} {
		m, err := sys.RunSystem(name, jobs, hetsched.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(hetsched.FormatMetrics(m))
	}

	base, err := sys.RunSystem("base", jobs, hetsched.SimConfig{})
	if err != nil {
		log.Fatal(err)
	}
	prop, err := sys.RunSystem("proposed", jobs, hetsched.SimConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nECU energy saving with the proposed scheduler: %.1f%%\n",
		100*(1-prop.TotalEnergy()/base.TotalEnergy()))
	fmt.Printf("ECU turnaround ratio vs base: %.2fx\n",
		float64(prop.TurnaroundCycles)/float64(base.TurnaroundCycles))
	fmt.Println("(the base system runs every task on uniformly large 8 KB caches — fast but")
	fmt.Println(" energy-hungry; the heterogeneous scheduler trades a slice of turnaround for")
	fmt.Println(" the energy budget, which is the design goal in this domain)")
}
