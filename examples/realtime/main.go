// Real-time extension (the paper's Section VIII future work): priorities,
// deadlines and preemption on top of the proposed scheduler. An overloaded
// mixed-criticality workload shows plain FIFO missing most high-priority
// deadlines while priority+preemption meets nearly all of them — at a
// quantified energy cost.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)

	fmt.Fprintln(os.Stderr, "setting up (characterization + ANN training)...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictANN})
	if err != nil {
		log.Fatal(err)
	}

	// An overloaded system (utilization 1.2): someone must lose. Two
	// criticality classes; the high class carries deadlines at 3x its
	// best-case execution time.
	jobs, err := sys.Workload(2000, 1.2, 13)
	if err != nil {
		log.Fatal(err)
	}
	sys.AssignPriorities(jobs, 2, 99)
	if err := sys.AssignDeadlines(jobs, 3); err != nil {
		log.Fatal(err)
	}
	// Deadlines matter only for the high-criticality class; background
	// jobs (priority 0) run best effort.
	for i := range jobs {
		if jobs[i].Priority == 0 {
			jobs[i].ClearDeadline()
		}
	}

	fifo := hetsched.SimConfig{}
	rt := hetsched.SimConfig{}
	rtBase, err := sys.RunSystem("proposed", jobs, fifo)
	if err != nil {
		log.Fatal(err)
	}
	rt.PriorityScheduling = true
	rt.Preemptive = true
	rtFull, err := sys.RunSystem("proposed", jobs, rt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("proposed scheduler, %d arrivals at 1.2x overload, deadlines at 3x best case\n\n", len(jobs))
	fmt.Printf("%-28s %12s %12s %12s %12s\n", "variant", "misses", "miss rate", "preemptions", "total mJ")
	for _, row := range []struct {
		name string
		m    hetsched.Metrics
	}{
		{"FIFO (paper baseline)", rtBase},
		{"priority + preemption", rtFull},
	} {
		fmt.Printf("%-28s %12d %11.1f%% %12d %12.1f\n",
			row.name, row.m.DeadlineMisses,
			100*row.m.MissRate(), row.m.Preemptions,
			row.m.TotalEnergy()/1e6)
	}
	fmt.Printf("\nenergy cost of meeting deadlines: %+.1f%%\n",
		100*(rtFull.TotalEnergy()/rtBase.TotalEnergy()-1))
}
