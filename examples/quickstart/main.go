// Quickstart: characterize the benchmark suite, train the paper's ANN
// predictor, run the four-system comparison and print the Figure 6/7 report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"hetsched"
)

func main() {
	log.SetFlags(0)

	// New characterizes all sixteen EEMBC-like kernels against the 18-entry
	// cache design space and trains the bagged {10,18,5,1} ANN — everything
	// the paper's scheduler needs.
	fmt.Fprintln(os.Stderr, "setting up (characterization + ANN training)...")
	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictANN})
	if err != nil {
		log.Fatal(err)
	}

	// Show what the predictor learned.
	fmt.Println("best-cache-size predictions (ANN vs oracle):")
	for _, k := range hetsched.Kernels() {
		pred, oracle, err := sys.PredictBestSize(k.Name)
		if err != nil {
			log.Fatal(err)
		}
		mark := " "
		if pred == oracle {
			mark = "*"
		}
		fmt.Printf("  %-8s predicted %dKB, oracle %dKB %s\n", k.Name, pred, oracle, mark)
	}
	fmt.Println()

	// Run a reduced version of the paper's experiment (full scale: 5000
	// arrivals via cmd/hmsim).
	cfg := hetsched.DefaultExperimentConfig()
	cfg.Arrivals = 1000
	res, err := sys.Experiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hetsched.FormatFigure6(res))
	fmt.Println()
	fmt.Print(hetsched.FormatFigure7(res))
	saving := 1 - res.Proposed.TotalEnergy()/res.Base.TotalEnergy()
	fmt.Printf("\nproposed scheduler saves %.1f%% total energy vs the fixed-configuration system\n",
		100*saving)
}
