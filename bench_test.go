package hetsched

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section VI) plus the ablations called out in DESIGN.md. Each
// benchmark measures the cost of the computation and, via b.ReportMetric
// (called after the timed loop — ResetTimer deletes user metrics), emits the
// figure's numbers so `go test -bench=.` serves as the reproduction run.
// EXPERIMENTS.md records the paper-vs-measured values.

import (
	"sync"
	"testing"

	"hetsched/internal/ann"
	"hetsched/internal/cache"
	"hetsched/internal/characterize"
	"hetsched/internal/core"
	"hetsched/internal/eembc"
	"hetsched/internal/energy"
	"hetsched/internal/tuner"
	"hetsched/internal/vm"
)

// benchArrivals keeps multi-system simulations tractable inside benchmark
// iterations while staying deep enough for stable normalized figures; the
// paper-scale 5000-arrival run is what cmd/hmsim executes.
const benchArrivals = 1500

var (
	benchOnce   sync.Once
	benchSys    *System // ANN-driven system (the paper's)
	benchOracle *System // oracle-driven system (ablation upper bound)
	benchRes    *ExperimentResult
	benchErr    error
)

func benchSetup(b *testing.B) (*System, *System, *ExperimentResult) {
	b.Helper()
	benchOnce.Do(func() {
		benchSys, benchErr = New(Options{Predictor: PredictANN})
		if benchErr != nil {
			return
		}
		benchOracle, benchErr = New(Options{Predictor: PredictOracle})
		if benchErr != nil {
			return
		}
		cfg := DefaultExperimentConfig()
		cfg.Arrivals = benchArrivals
		benchRes, benchErr = benchSys.Experiment(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys, benchOracle, benchRes
}

// ----------------------------------------------------------------------
// Table 1: the 18-configuration design space, swept end to end — a kernel
// trace replayed through every configuration under the energy model.
// ----------------------------------------------------------------------

func BenchmarkTable1DesignSpace(b *testing.B) {
	k, err := eembc.ByName("tblook")
	if err != nil {
		b.Fatal(err)
	}
	_, tr, err := eembc.Record(k, eembc.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	em := energy.NewDefault()
	space := cache.DesignSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bestE float64
		var best cache.Config
		for _, cfg := range space {
			l1 := cache.MustNewL1(cfg)
			for _, a := range tr.Accesses {
				l1.Access(a.Addr, a.Write)
			}
			s := l1.Stats()
			cycles := em.ExecCycles(0, cfg, s.Misses)
			e := em.Total(cfg, s.Hits, s.Misses, cycles).Total
			if best == (cache.Config{}) || e < bestE {
				best, bestE = cfg, e
			}
		}
		if !best.Valid() {
			b.Fatal("sweep found no best config")
		}
	}
	b.ReportMetric(float64(len(space)), "configs")
}

// ----------------------------------------------------------------------
// Figure 3 / Section IV.D: the bagged ANN predictor — training quality and
// inference cost. The paper reports < 2% energy degradation vs the optimal
// cache size; the measured degradation is emitted as a metric.
// ----------------------------------------------------------------------

func BenchmarkFig3ANNPrediction(b *testing.B) {
	sys, _, _ := benchSetup(b)
	db := sys.Eval
	var degraded, optimal float64
	hits := 0
	for i := range db.Records {
		r := &db.Records[i]
		size, err := sys.Pred.PredictSizeKB(r.Features)
		if err != nil {
			b.Fatal(err)
		}
		if size == r.BestSizeKB() {
			hits++
		}
		chosen, err := r.BestConfigForSize(size)
		if err != nil {
			b.Fatal(err)
		}
		degraded += chosen.Energy.Total
		optimal += r.BestConfig().Energy.Total
	}
	features := db.Records[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Pred.PredictSizeKB(features); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(degraded/optimal-1), "energy-degradation-%")
	b.ReportMetric(float64(hits)/float64(len(db.Records)), "accuracy")
}

// ----------------------------------------------------------------------
// Figure 4: the energy model itself.
// ----------------------------------------------------------------------

func BenchmarkFig4EnergyModel(b *testing.B) {
	em := energy.NewDefault()
	cfg := cache.BaseConfig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Total(cfg, 100_000, 1_000, 300_000)
	}
	b.ReportMetric(em.MissEnergy(cfg), "nJ/miss")
	b.ReportMetric(em.Cacti().HitEnergy(cfg), "nJ/hit")
}

// ----------------------------------------------------------------------
// Figure 5 / Section VI: the tuning heuristic. The paper: minimum 3 and
// maximum 9 configurations explored, observed <= 6, out of 18.
// ----------------------------------------------------------------------

func BenchmarkFig5TuningHeuristic(b *testing.B) {
	db, err := characterize.Default()
	if err != nil {
		b.Fatal(err)
	}
	runSuite := func() (explored int, worst int) {
		for i := range db.Records {
			r := &db.Records[i]
			for _, size := range cache.Sizes() {
				tn := tuner.MustNew(size)
				for !tn.Done() {
					cfg, _ := tn.Next()
					cr, err := r.Result(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if err := tn.Observe(cfg, cr.Energy.Total); err != nil {
						b.Fatal(err)
					}
				}
				n := len(tn.Explored())
				explored += n
				if n > worst {
					worst = n
				}
			}
		}
		return explored, worst
	}
	var explored, worst int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explored, worst = runSuite()
	}
	b.ReportMetric(float64(explored)/float64(len(db.Records)*len(cache.Sizes())), "avg-explored")
	b.ReportMetric(float64(worst), "max-explored")
}

// ----------------------------------------------------------------------
// Figure 6: idle/dynamic/total energy of the three systems normalized to
// the base system, over the uniform-arrival workload.
// ----------------------------------------------------------------------

func BenchmarkFig6EnergyVsBase(b *testing.B) {
	sys, _, res := benchSetup(b)
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Experiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Figure6() {
		b.ReportMetric(r.Total, r.System+"-total")
		b.ReportMetric(r.Dynamic, r.System+"-dyn")
	}
	saving := 1 - res.Proposed.TotalEnergy()/res.Base.TotalEnergy()
	b.ReportMetric(100*saving, "proposed-saving-%")
}

// ----------------------------------------------------------------------
// Figure 7: cycles and energy normalized to the optimal system.
// ----------------------------------------------------------------------

func BenchmarkFig7VsOptimal(b *testing.B) {
	sys, _, res := benchSetup(b)
	jobs, err := sys.Workload(400, 0.9, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSystem("proposed", jobs, SimConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Figure7() {
		b.ReportMetric(r.Cycles, r.System+"-cycles")
		b.ReportMetric(r.Total, r.System+"-total")
	}
}

// ----------------------------------------------------------------------
// Section VI: profiling overhead (< 0.5% of total energy in the paper).
// ----------------------------------------------------------------------

func BenchmarkProfilingOverhead(b *testing.B) {
	_, _, res := benchSetup(b)
	k, err := eembc.ByName("a2time")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The profiling pipeline: execute once with counters + trace.
		if _, _, err := eembc.Record(k, eembc.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*core.ProfilingOverheadFraction(res.Proposed), "overhead-%")
}

// ----------------------------------------------------------------------
// Ablations (DESIGN.md section 4).
// ----------------------------------------------------------------------

// BenchmarkAblationEadv quantifies the energy-advantageous decision by
// comparing the proposed system against always-stall (energy-centric) and
// never-stall (proposed-noEadv) fixed strategies — the hypothesis test of
// Section VI's closing observation.
func BenchmarkAblationEadv(b *testing.B) {
	sys, _, _ := benchSetup(b)
	jobs, err := sys.Workload(benchArrivals, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	totals := map[string]float64{}
	for _, name := range []string{"proposed", "proposed-noEadv", "energy-centric"} {
		m, err := sys.RunSystem(name, jobs, SimConfig{})
		if err != nil {
			b.Fatal(err)
		}
		totals[name] = m.TotalEnergy()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSystem("proposed", jobs, SimConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(totals["proposed-noEadv"]/totals["proposed"], "neverstall/proposed")
	b.ReportMetric(totals["energy-centric"]/totals["proposed"], "alwaysstall/proposed")
}

// BenchmarkAblationBagging sweeps the ensemble size (paper: 30).
func BenchmarkAblationBagging(b *testing.B) {
	train, err := characterize.Augmented()
	if err != nil {
		b.Fatal(err)
	}
	eval, err := characterize.Default()
	if err != nil {
		b.Fatal(err)
	}
	members := []int{1, 5, 30}
	accs := map[int]float64{}
	for _, m := range members {
		pred, _, err := ann.TrainSizePredictor(train, ann.PredictorConfig{
			Seed:     42,
			Ensemble: ann.EnsembleConfig{Members: m},
		})
		if err != nil {
			b.Fatal(err)
		}
		hits := 0
		for i := range eval.Records {
			size, err := pred.PredictSizeKB(eval.Records[i].Features)
			if err != nil {
				b.Fatal(err)
			}
			if size == eval.Records[i].BestSizeKB() {
				hits++
			}
		}
		accs[m] = float64(hits) / float64(len(eval.Records))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ann.TrainSizePredictor(train, ann.PredictorConfig{
			Seed:     42,
			Ensemble: ann.EnsembleConfig{Members: 5},
		}); err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range members {
		b.ReportMetric(accs[m], "accuracy-"+itoa(m))
	}
}

// BenchmarkAblationPredictors compares total proposed-system energy under
// every predictor family (the future-work comparison of Section VIII).
func BenchmarkAblationPredictors(b *testing.B) {
	_, oracleSys, _ := benchSetup(b)
	jobs, err := oracleSys.Workload(benchArrivals, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	kinds := []PredictorKind{PredictOracle, PredictANN, PredictLinear, PredictKNN, PredictStump, PredictTree}
	energies := map[PredictorKind]float64{}
	for _, kind := range kinds {
		sys, err := New(Options{Predictor: kind})
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.RunSystem("proposed", jobs, SimConfig{})
		if err != nil {
			b.Fatal(err)
		}
		energies[kind] = m.TotalEnergy() / 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracleSys.RunSystem("proposed", jobs, SimConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	for _, kind := range kinds {
		b.ReportMetric(energies[kind], "mJ-"+kind.String())
	}
}

// BenchmarkAblationProfilingCores compares dual (Core 3+4) against single
// (Core 4 only) profiling-core operation.
func BenchmarkAblationProfilingCores(b *testing.B) {
	sys, _, _ := benchSetup(b)
	jobs, err := sys.Workload(benchArrivals, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	dual, err := sys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		b.Fatal(err)
	}
	single := core.DefaultSimConfig()
	single.SingleProfilingCore = true
	sm, err := sys.RunSystem("proposed", jobs, single)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSystem("proposed", jobs, single); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sm.TotalEnergy()/dual.TotalEnergy(), "single/dual-energy")
	b.ReportMetric(float64(sm.TurnaroundCycles)/float64(dual.TurnaroundCycles), "single/dual-cycles")
}

// BenchmarkAblationLoad sweeps the offered load: the proposed system's
// advantage must persist from light load to saturation.
func BenchmarkAblationLoad(b *testing.B) {
	sys, _, _ := benchSetup(b)
	utils := []float64{0.5, 0.75, 0.9}
	savings := map[float64]float64{}
	for _, util := range utils {
		cfg := DefaultExperimentConfig()
		cfg.Arrivals = 800
		cfg.Utilization = util
		res, err := sys.Experiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		savings[util] = 100 * (1 - res.Proposed.TotalEnergy()/res.Base.TotalEnergy())
	}
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Experiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, util := range utils {
		b.ReportMetric(savings[util], "saving%-u"+ftoa(util))
	}
}

// ----------------------------------------------------------------------
// Future-work extensions (Section VIII).
// ----------------------------------------------------------------------

// BenchmarkExtensionL2 contrasts the paper's L1-only energy model with the
// two-level hierarchy extension: proposed-system savings under both ground
// truths.
func BenchmarkExtensionL2(b *testing.B) {
	l2sys, err := New(Options{Predictor: PredictOracle, WithL2: true})
	if err != nil {
		b.Fatal(err)
	}
	_, oracleSys, _ := benchSetup(b)
	cfg := DefaultExperimentConfig()
	cfg.Arrivals = 800
	l1res, err := oracleSys.Experiment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l2res, err := l2sys.Experiment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l2sys.Experiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-l1res.Proposed.TotalEnergy()/l1res.Base.TotalEnergy()), "saving%-L1only")
	b.ReportMetric(100*(1-l2res.Proposed.TotalEnergy()/l2res.Base.TotalEnergy()), "saving%-withL2")
}

// BenchmarkExtensionRealtime measures the priority+preemption extension: a
// mixed-criticality overload where the extension rescues high-priority
// deadlines at a bounded energy cost.
func BenchmarkExtensionRealtime(b *testing.B) {
	_, sys, _ := benchSetup(b)
	jobs, err := sys.Workload(1000, 1.2, 13)
	if err != nil {
		b.Fatal(err)
	}
	sys.AssignPriorities(jobs, 2, 99)
	if err := sys.AssignDeadlines(jobs, 3); err != nil {
		b.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Priority == 0 {
			jobs[i].ClearDeadline()
		}
	}
	fifo, err := sys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := sys.RunSystem("proposed", jobs, SimConfig{PriorityScheduling: true, Preemptive: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSystem("proposed", jobs, SimConfig{PriorityScheduling: true, Preemptive: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fifo.MissRate(), "missrate-fifo")
	b.ReportMetric(rt.MissRate(), "missrate-preemptive")
	b.ReportMetric(rt.TotalEnergy()/fifo.TotalEnergy(), "energy-ratio")
}

// BenchmarkExtensionANNOverhead evaluates the future-work question "what
// overhead does the machine learning algorithm introduce": the profiling
// latency (counter collection + ANN inference) is swept from free to
// pathological and the proposed system's total energy is re-measured.
func BenchmarkExtensionANNOverhead(b *testing.B) {
	sys, _, _ := benchSetup(b)
	jobs, err := sys.Workload(benchArrivals, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	overheads := []uint64{0, 2_000, 100_000, 2_000_000}
	totals := map[uint64]float64{}
	for _, oh := range overheads {
		cfg := core.DefaultSimConfig()
		cfg.ProfilingCycles = oh
		m, err := sys.RunSystem("proposed", jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		totals[oh] = m.TotalEnergy()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSystem("proposed", jobs, SimConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	base := totals[0]
	for _, oh := range overheads[1:] {
		b.ReportMetric(100*(totals[oh]/base-1), "energy%+oh"+itoa(int(oh/1000))+"k")
	}
}

// BenchmarkExtensionContention sweeps the shared-memory-bus contention
// factor: the proposed system's saving must survive bus pressure.
func BenchmarkExtensionContention(b *testing.B) {
	sys, _, _ := benchSetup(b)
	jobs, err := sys.Workload(800, 0.9, 3)
	if err != nil {
		b.Fatal(err)
	}
	factors := []float64{0, 0.5, 1.0}
	ratios := map[float64]float64{}
	for _, f := range factors {
		cfg := core.DefaultSimConfig()
		cfg.MemContentionFactor = f
		prop, err := sys.RunSystem("proposed", jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		baseCfg := cfg
		base, err := sys.RunSystem("base", jobs, baseCfg)
		if err != nil {
			b.Fatal(err)
		}
		ratios[f] = prop.TotalEnergy() / base.TotalEnergy()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultSimConfig()
		cfg.MemContentionFactor = 1.0
		if _, err := sys.RunSystem("proposed", jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
	for _, f := range factors {
		b.ReportMetric(ratios[f], "prop/base-f"+ftoa(f))
	}
}

// BenchmarkExtensionSharedL2 measures shared-L2 interference (the second
// half of the future-work "private and shared caches"): a cache-friendly
// victim's off-chip traffic with an idle neighbour versus with a thrashing
// aggressor sharing the L2.
func BenchmarkExtensionSharedL2(b *testing.B) {
	victimKernel, err := eembc.ByName("tblook")
	if err != nil {
		b.Fatal(err)
	}
	aggressorKernel, err := eembc.ByName("cacheb")
	if err != nil {
		b.Fatal(err)
	}
	_, victimTrace, err := eembc.Record(victimKernel, eembc.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	_, aggressorTrace, err := eembc.Record(aggressorKernel, eembc.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	toShared := func(t []vmAccess) []cache.TraceAccess {
		out := make([]cache.TraceAccess, len(t))
		for i, a := range t {
			// Disjoint address spaces per core, as in distinct processes.
			out[i] = cache.TraceAccess{Addr: a.Addr, Write: a.Write}
		}
		return out
	}
	victim := toShared(victimTrace.Accesses)
	aggressor := toShared(aggressorTrace.Accesses)
	for i := range aggressor {
		aggressor[i].Addr += 1 << 20
	}
	l1 := cache.MustParseConfig("4KB_1W_32B")
	l2 := cache.L2Config{SizeKB: 16, Ways: 4, LineBytes: 32}

	run := func(neighbour []cache.TraceAccess) uint64 {
		h, err := cache.NewSharedHierarchy(2, l1, l2)
		if err != nil {
			b.Fatal(err)
		}
		_, off, err := h.InterleaveTraces([][]cache.TraceAccess{victim, neighbour})
		if err != nil {
			b.Fatal(err)
		}
		return off[0]
	}
	alone := run(nil)
	contended := run(aggressor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(aggressor)
	}
	b.ReportMetric(float64(alone), "victim-offchip-alone")
	b.ReportMetric(float64(contended), "victim-offchip-contended")
}

// vmAccess aliases the trace element for the shared-L2 bench.
type vmAccess = vm.Access

// BenchmarkExtensionDVFS sweeps a uniform core frequency under the
// proposed scheduler — the intro's "voltage, frequency" configurability
// axis. Slower clocks cut V²-scaled core energy but dilate occupancy
// (static + idle grow): the race-to-idle trade-off, quantified.
func BenchmarkExtensionDVFS(b *testing.B) {
	_, sys, _ := benchSetup(b)
	jobs, err := sys.Workload(800, 0.6, 5)
	if err != nil {
		b.Fatal(err)
	}
	freqs := []float64{1.0, 0.8, 0.6}
	results := map[float64]Metrics{}
	for _, f := range freqs {
		cfg := core.DefaultSimConfig()
		cfg.CoreFreqs = []float64{f, f, f, f}
		m, err := sys.RunSystem("proposed", jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		results[f] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultSimConfig()
		cfg.CoreFreqs = []float64{0.8, 0.8, 0.8, 0.8}
		if _, err := sys.RunSystem("proposed", jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
	nominal := results[1.0]
	for _, f := range freqs[1:] {
		m := results[f]
		b.ReportMetric(m.TotalEnergy()/nominal.TotalEnergy(), "energy-f"+ftoa(f))
		b.ReportMetric(float64(m.TurnaroundCycles)/float64(nominal.TurnaroundCycles), "cycles-f"+ftoa(f))
	}
}

// BenchmarkExtensionPreload contrasts cold-start (runtime profiling +
// tuning) against the design-time pre-loaded profiling table of
// Section IV.B.
func BenchmarkExtensionPreload(b *testing.B) {
	_, sys, _ := benchSetup(b)
	jobs, err := sys.Workload(800, 0.8, 21)
	if err != nil {
		b.Fatal(err)
	}
	run := func(preload bool) Metrics {
		pol, _, err := core.NewPolicy("proposed")
		if err != nil {
			b.Fatal(err)
		}
		sim, err := core.NewSimulator(sys.Eval, sys.Energy, pol, sys.Pred, core.DefaultSimConfig())
		if err != nil {
			b.Fatal(err)
		}
		if preload {
			if err := sim.Preload(true); err != nil {
				b.Fatal(err)
			}
		}
		m, err := sim.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	cold := run(false)
	warm := run(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(true)
	}
	b.ReportMetric(warm.TotalEnergy()/cold.TotalEnergy(), "warm/cold-energy")
	b.ReportMetric(float64(cold.ProfilingRuns), "cold-profiling-runs")
	b.ReportMetric(float64(warm.ProfilingRuns), "warm-profiling-runs")
}

// BenchmarkExtensionClairvoyant bounds the headroom above the paper's
// system: a clairvoyant scheduler (oracle predictions + fully pre-loaded
// design-time knowledge, i.e. zero profiling and zero tuning) versus the
// cold-start ANN-driven proposed system.
func BenchmarkExtensionClairvoyant(b *testing.B) {
	annSys, oracleSys, _ := benchSetup(b)
	jobs, err := annSys.Workload(benchArrivals, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	cold, err := annSys.RunSystem("proposed", jobs, SimConfig{})
	if err != nil {
		b.Fatal(err)
	}
	clairvoyant := func() Metrics {
		pol, _, err := core.NewPolicy("proposed")
		if err != nil {
			b.Fatal(err)
		}
		sim, err := core.NewSimulator(oracleSys.Eval, oracleSys.Energy, pol,
			oracleSys.Pred, core.DefaultSimConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Preload(true); err != nil {
			b.Fatal(err)
		}
		m, err := sim.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	perfect := clairvoyant()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clairvoyant()
	}
	b.ReportMetric(perfect.TotalEnergy()/cold.TotalEnergy(), "clairvoyant/cold-energy")
	b.ReportMetric(float64(perfect.TurnaroundCycles)/float64(cold.TurnaroundCycles), "clairvoyant/cold-cycles")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func ftoa(v float64) string {
	whole := int(v)
	frac := int(v*100) % 100
	return itoa(whole) + "." + itoa(frac/10) + itoa(frac%10)
}
