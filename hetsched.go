// Package hetsched reproduces "Dynamic Scheduling on Heterogeneous
// Multicores" (Edun, Vazquez, Gordon-Ross, Stitt; DATE 2019): an
// energy-aware dynamic scheduler for a heterogeneous quad-core embedded
// system with runtime-configurable L1 caches, driven by a bagged ANN that
// predicts each application's best cache size from profiled hardware
// counters, a resumable cache-tuning heuristic for non-best cores, and an
// energy-advantageous stall-or-migrate decision.
//
// The package is a facade over the full reproduction stack:
//
//   - internal/isa, internal/vm     — embedded CPU substrate (SimpleScalar stand-in)
//   - internal/eembc                — 20 synthetic EEMBC-like kernels (16 automotive + 4 telecom)
//   - internal/cache                — configurable L1/L2 cache models (Table 1)
//   - internal/cacti, internal/energy — 0.18 µm energy models (Figure 4)
//   - internal/characterize         — per-configuration ground truth
//   - internal/stats, internal/ann  — execution statistics + bagged ANN (Figure 3)
//   - internal/tuner                — cache tuning heuristic (Figure 5)
//   - internal/core                 — the scheduler and the four compared systems
//   - internal/mlbase               — future-work predictor baselines
//
// Typical use:
//
//	sys, err := hetsched.New(hetsched.Options{Predictor: hetsched.PredictANN})
//	...
//	res, err := sys.Experiment(hetsched.DefaultExperimentConfig())
//	fmt.Print(hetsched.FormatFigures(res))
package hetsched

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"hetsched/internal/ann"
	"hetsched/internal/cache"
	"hetsched/internal/characterize"
	"hetsched/internal/core"
	"hetsched/internal/eembc"
	"hetsched/internal/energy"
	"hetsched/internal/fault"
	"hetsched/internal/trace"
	"hetsched/internal/tuner"
)

// Re-exported types: the public API speaks these names; the internal
// packages carry the implementations.
type (
	// CacheConfig is one L1 configuration (size, ways, line size).
	CacheConfig = cache.Config
	// Metrics aggregates one simulated system run.
	Metrics = core.Metrics
	// ExperimentResult holds the four systems' metrics over one workload.
	ExperimentResult = core.ExperimentResult
	// ExperimentConfig shapes a four-system comparison.
	ExperimentConfig = core.ExperimentConfig
	// SimConfig shapes the simulated machine.
	SimConfig = core.SimConfig
	// NormRow is one normalized figure row.
	NormRow = core.NormRow
	// Job is one benchmark arrival.
	Job = core.Job
	// Predictor predicts an application's best cache size.
	Predictor = core.Predictor
	// DB is the offline characterization database.
	DB = characterize.DB
	// Record is one benchmark variant's characterization.
	Record = characterize.Record
	// Variant names one benchmark variant (kernel + params) to
	// characterize — the unit the serving tier's content keys cover.
	Variant = characterize.Variant
	// Kernel is one synthetic benchmark.
	Kernel = eembc.Kernel
	// KernelParams scales a kernel.
	KernelParams = eembc.Params
	// FaultPlan is a seeded fault-injection schedule (resilience
	// extension); the zero value is disabled and provably changes nothing.
	FaultPlan = fault.Plan
	// FaultEvent is one applied fault in a run's Metrics.FaultTimeline.
	FaultEvent = fault.Event
	// TraceRecorder collects the simulator's decision-audit events
	// (SimConfig.Trace / Options.Trace); see internal/trace.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded scheduling decision or lifecycle
	// transition.
	TraceEvent = trace.Event
)

// Trace event kinds, re-exported for callers constructing or filtering
// events through the facade (see internal/trace for the taxonomy).
const (
	TraceKindEnqueue  = trace.KindEnqueue
	TraceKindDispatch = trace.KindDispatch
	TraceKindProfile  = trace.KindProfile
	TraceKindPredict  = trace.KindPredict
	TraceKindTune     = trace.KindTune
	TraceKindStall    = trace.KindStall
	TraceKindFault    = trace.KindFault
	TraceKindKill     = trace.KindKill
	TraceKindComplete = trace.KindComplete
	TraceKindSLO      = trace.KindSLO
)

// NewTraceRecorder returns an unbounded decision-audit recorder to attach
// via Options.Trace or SimConfig.Trace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewTraceRing returns a bounded decision-audit recorder that retains only
// the newest capacity events.
func NewTraceRing(capacity int) *TraceRecorder { return trace.NewRing(capacity) }

// WriteTraceChrome renders recorded events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteTraceChrome(w io.Writer, events []TraceEvent) error {
	return trace.WriteChrome(w, events)
}

// WriteTraceCSV renders recorded events as a flat CSV; ReadTraceCSV parses
// it back.
func WriteTraceCSV(w io.Writer, events []TraceEvent) error {
	return trace.WriteCSV(w, events)
}

// ReadTraceCSV parses a CSV trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) ([]TraceEvent, error) { return trace.ReadCSV(r) }

// WriteTraceFile writes recorded events to path, choosing the format by
// extension: .json is Chrome trace-event JSON (open in Perfetto), anything
// else the flat CSV. This is the CLIs' shared -trace implementation.
func WriteTraceFile(path string, events []TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChrome(f, events)
	} else {
		err = trace.WriteCSV(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ParseFaultPlan parses the CLIs' shared -faults flag vocabulary, e.g.
// "mttf=5e6,recover=1e5,permanent=5e7,stuck=2e7,noise=0.05,seed=1" — or
// "off"/"" for the disabled zero plan.
func ParseFaultPlan(s string) (FaultPlan, error) { return fault.ParseSpec(s) }

// DefaultExperimentConfig mirrors the paper's setup: 5000 uniformly
// distributed arrivals on the Figure 1 quad-core machine.
func DefaultExperimentConfig() ExperimentConfig { return core.DefaultExperimentConfig() }

// DesignSpace returns the 18 cache configurations of Table 1.
func DesignSpace() []CacheConfig { return cache.DesignSpace() }

// BaseConfig is the profiling/base configuration 8KB_4W_64B.
func BaseConfig() CacheConfig { return cache.BaseConfig }

// ParseCacheConfig parses the paper's notation, e.g. "8KB_4W_64B".
func ParseCacheConfig(s string) (CacheConfig, error) { return cache.ParseConfig(s) }

// Kernels returns the sixteen automotive benchmarks of the canonical
// suite.
func Kernels() []Kernel { return eembc.Suite() }

// TelecomKernels returns the four telecom-domain benchmarks (scheduled
// only when Options.IncludeTelecom was set).
func TelecomKernels() []Kernel { return eembc.TelecomSuite() }

// KernelByName returns one benchmark by its EEMBC-style name.
func KernelByName(name string) (Kernel, error) { return eembc.ByName(name) }

// PredictorKind selects the best-core predictor a System schedules with.
type PredictorKind int

// Predictor kinds.
const (
	// PredictANN is the paper's predictor: 30 bagged {10,18,5,1} networks.
	PredictANN PredictorKind = iota
	// PredictOracle uses ground-truth best sizes (upper bound).
	PredictOracle
	// PredictLinear is the ridge-regression baseline.
	PredictLinear
	// PredictKNN is the k-nearest-neighbours baseline (k=3).
	PredictKNN
	// PredictStump is the decision-stump baseline.
	PredictStump
	// PredictTree is the depth-4 CART decision-tree baseline.
	PredictTree
)

// Engine selects the cache-simulation engine characterization runs on.
type Engine = characterize.Engine

// Simulation engines. EngineStream (the zero value) fuses kernel execution
// and simulation: packed accesses stream straight into the one-pass
// simulator in fixed-size chunks, with no trace ever materialized and the
// simulator state reused per worker. EngineOnePass records a packed trace
// and scores all 18 Table 1 configurations in a single traversal;
// EngineReplay is the reference per-configuration path. All three are
// bit-identical, so the choice never changes results — only how long
// characterization takes.
const (
	EngineStream  = characterize.EngineStream
	EngineOnePass = characterize.EngineOnePass
	EngineReplay  = characterize.EngineReplay
)

// ParseEngine parses the CLIs' shared -engine flag vocabulary
// ("stream"|"onepass"|"replay").
func ParseEngine(s string) (Engine, error) { return characterize.ParseEngine(s) }

// ReplayCount reports the process-wide number of kernel trace traversals
// performed so far: one per (variant, configuration) under EngineReplay,
// one per variant under EngineStream and EngineOnePass — the observable
// 18×→1 reduction.
func ReplayCount() uint64 { return characterize.ReplayCount() }

// ParsePredictorKind parses a predictor name as printed by
// PredictorKind.String — the shared flag/API vocabulary of the CLIs and the
// hetschedd daemon.
func ParsePredictorKind(s string) (PredictorKind, error) {
	switch s {
	case "ann":
		return PredictANN, nil
	case "oracle":
		return PredictOracle, nil
	case "linear":
		return PredictLinear, nil
	case "knn":
		return PredictKNN, nil
	case "stump":
		return PredictStump, nil
	case "tree":
		return PredictTree, nil
	}
	return 0, fmt.Errorf("hetsched: unknown predictor %q (want ann|oracle|linear|knn|stump|tree)", s)
}

// String names the predictor kind.
func (k PredictorKind) String() string {
	switch k {
	case PredictANN:
		return "ann"
	case PredictOracle:
		return "oracle"
	case PredictLinear:
		return "linear"
	case PredictKNN:
		return "knn"
	case PredictStump:
		return "stump"
	case PredictTree:
		return "tree"
	}
	return fmt.Sprintf("predictor(%d)", int(k))
}

// Set implements flag.Value, so CLIs bind -predictor straight to a
// PredictorKind instead of hand-parsing strings.
func (k *PredictorKind) Set(s string) error {
	parsed, err := ParsePredictorKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler; an out-of-range kind is an
// error rather than a silently serialized "predictor(N)".
func (k PredictorKind) MarshalText() ([]byte, error) {
	if k < PredictANN || k > PredictTree {
		return nil, fmt.Errorf("hetsched: unknown predictor kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler (flag.TextVar, JSON
// object keys, config files).
func (k *PredictorKind) UnmarshalText(text []byte) error {
	return k.Set(string(text))
}

// Options configures New.
type Options struct {
	// Spec selects the best-core predictor: a single kind or a weighted
	// online-learning ensemble (see ParsePredictorSpec). When zero, the
	// legacy Predictor field applies.
	Spec PredictorSpec
	// Predictor selects the best-core predictor by legacy kind (default
	// PredictANN). Superseded by Spec, which covers every kind name plus
	// the ensemble grammar; kept for compatibility and ignored when Spec
	// is set.
	Predictor PredictorKind
	// Seed drives ANN training and splits (default 42).
	Seed int64
	// EnergyParams overrides the energy-model constants (nil = defaults).
	EnergyParams *energy.Params
	// WithL2 characterizes under the two-level hierarchy (future-work
	// extension): L1 misses that hit the private L2 cost far less than
	// off-chip accesses, shifting best sizes toward smaller caches.
	WithL2 bool
	// IncludeTelecom adds the second application domain (the four EEMBC
	// telecom-like kernels) to both the evaluation and training pools —
	// the multi-domain setting of Section IV.D. Requires recharacterizing,
	// so setup is slower than the cached automotive-only default.
	IncludeTelecom bool
	// MultiDomainANN (requires IncludeTelecom and PredictANN) trains one
	// specialized ensemble per application domain with a nearest-sample
	// router, instead of a single ANN over the mixed population —
	// Section IV.D's "multiple ANNs each ... specialized for a different
	// domain".
	MultiDomainANN bool
	// Workers bounds the setup worker pools: characterization simulation
	// jobs and ANN member training. 0 means runtime.GOMAXPROCS(0); the
	// count never changes results.
	Workers int
	// Engine selects the cache-simulation engine for characterization.
	// The default EngineStream streams each kernel's accesses straight
	// into the one-pass simulator as it executes, materializing no trace;
	// EngineOnePass and EngineReplay are the reference paths.
	// Bit-identical results every way.
	Engine Engine
	// CacheDir enables the persistent characterization cache: DBs are
	// content-keyed (design space, energy constants, variant list) and
	// stored under this directory, so repeated runs skip kernel replay
	// entirely. Empty disables; characterize.DefaultCacheDir() is the
	// conventional location.
	CacheDir string
	// Faults is the system's default fault-injection plan: every
	// Experiment/RunSystem call whose own SimConfig carries a disabled
	// plan inherits it. The zero value (disabled) leaves all outputs
	// bit-identical to a System without the fault subsystem in the path.
	Faults FaultPlan
	// Trace is the system's default decision-audit recorder: every
	// Experiment/RunSystem call whose own SimConfig carries no recorder
	// inherits it (events from an Experiment's four systems are
	// distinguished by their System stamp). Nil disables tracing and is a
	// proven no-op. Simulations run sequentially into one recorder; do not
	// share a traced System across concurrent runs.
	Trace *TraceRecorder
}

// SetupInfo reports how New obtained its characterization DBs.
type SetupInfo struct {
	// EvalFromCache and TrainFromCache are true when the corresponding DB
	// was loaded from the persistent cache instead of replayed.
	EvalFromCache, TrainFromCache bool
}

// System bundles everything needed to run the paper's experiments: the
// characterization ground truth, the energy model and a trained predictor.
//
// Goroutine safety: a System is immutable after New and safe for concurrent
// use — every method reads the characterization DBs, energy model and
// trained predictor without mutating them, and workload/priority generation
// takes explicit seeds instead of storing RNG state. One trained System can
// therefore be shared read-only across a worker pool (see internal/server).
// The discrete-event Simulator underneath RunSystem/Experiment is the
// opposite: single-use and NOT goroutine-safe; these methods construct a
// fresh private simulator per call, so concurrency is safe as long as
// callers do not reach into internal/core and share a Simulator themselves.
// Callers must not mutate the exported Eval/Train/Energy/Pred fields after
// the System is shared.
type System struct {
	// Eval is the characterization the experiments draw workloads from:
	// the canonical 16 automotive kernels, or 20 with IncludeTelecom.
	Eval *DB
	// Train is the augmented pool the predictor was fitted on.
	Train *DB
	// Energy is the Figure 4 model.
	Energy *energy.Model
	// Pred is the trained best-size predictor.
	Pred Predictor
	// Setup reports whether the DBs came from the persistent cache.
	Setup SetupInfo

	spec      PredictorSpec
	buildSeed int64
	buildOpts Options // resolved build inputs, reused by WithPredictorSpec
	faults    FaultPlan
	tracer    *TraceRecorder
}

// New characterizes the benchmark suite (cached per process) and trains the
// requested predictor.
func New(opts Options) (*System, error) {
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	em := energy.NewDefault()
	if opts.EnergyParams != nil {
		var err error
		em, err = energy.New(*opts.EnergyParams, em.Cacti())
		if err != nil {
			return nil, err
		}
	}
	evalVariants := characterize.CanonicalVariants()
	trainVariants := characterize.AugmentedVariants()
	if opts.IncludeTelecom {
		evalVariants = characterize.ExtendedVariants()
		trainVariants = characterize.AugmentedExtendedVariants()
	}
	copts := characterize.Options{Workers: opts.Workers, Engine: opts.Engine}
	if opts.WithL2 {
		// The L2 extension changes every per-configuration outcome;
		// characterize under the two-level model.
		l2, err := energy.NewL2(em, energy.DefaultL2Params())
		if err != nil {
			return nil, err
		}
		copts.L2 = l2
	}
	// A changed ground truth (custom energy constants, the L2 model, or an
	// extended kernel population) requires recharacterizing; the content
	// key covers all of it, so the persistent cache still applies. A
	// non-default engine cannot change results, but it must actually run —
	// sharing the process-wide DBs would silently ignore the request.
	custom := opts.WithL2 || opts.EnergyParams != nil || opts.IncludeTelecom ||
		opts.Engine != characterize.EngineStream

	var (
		eval, train *DB
		setup       SetupInfo
		err         error
	)
	if opts.CacheDir == "" && !custom {
		// Canonical setup without a disk cache: share the process-wide
		// DBs.
		eval, err = characterize.Default()
		if err != nil {
			return nil, err
		}
		train, err = characterize.Augmented()
	} else {
		eval, setup.EvalFromCache, err = characterize.CharacterizeCached(evalVariants, em, copts, opts.CacheDir)
		if err != nil {
			return nil, err
		}
		train, setup.TrainFromCache, err = characterize.CharacterizeCached(trainVariants, em, copts, opts.CacheDir)
	}
	if err != nil {
		return nil, err
	}

	sys := &System{Eval: eval, Train: train, Energy: em, Setup: setup, faults: opts.Faults, tracer: opts.Trace}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	spec := opts.Spec
	if spec.IsZero() {
		// Legacy selection path: lift the deprecated kind to its spec.
		spec, err = opts.Predictor.Spec()
		if err != nil {
			return nil, err
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sys.spec = spec
	sys.buildSeed = seed
	sys.buildOpts = opts
	if opts.MultiDomainANN {
		if !opts.IncludeTelecom || !spec.IsSingle("ann") {
			return nil, fmt.Errorf("hetsched: MultiDomainANN requires IncludeTelecom and PredictANN")
		}
		md, err := trainMultiDomain(em, copts, opts, seed)
		if err != nil {
			return nil, err
		}
		sys.Pred = md
		return sys, nil
	}
	pred, err := buildPredictor(spec, eval, train, seed, opts)
	if err != nil {
		return nil, err
	}
	sys.Pred = pred
	return sys, nil
}

// PredictorName reports which predictor the system schedules with — the
// spec string ("ann", "ensemble:table,markov,ann", ...).
func (s *System) PredictorName() string { return s.spec.String() }

// ResolveCacheDir maps the CLIs' shared -cache-dir flag vocabulary to an
// Options.CacheDir value: "auto" resolves to the per-user cache directory
// ($XDG_CACHE_HOME/hetsched or equivalent), "off" and "" disable the
// persistent cache, anything else is used as the directory itself.
func ResolveCacheDir(flagVal string) (string, error) {
	switch flagVal {
	case "", "off", "none":
		return "", nil
	case "auto":
		return characterize.DefaultCacheDir()
	default:
		return flagVal, nil
	}
}

// Experiment runs the paper's four-system comparison (Section V) on one
// workload: base, optimal, energy-centric and proposed.
func (s *System) Experiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return s.ExperimentContext(context.Background(), cfg)
}

// ExperimentContext is Experiment honoring cancellation at every
// job-dispatch boundary: a canceled context abandons the in-flight
// simulation instead of running it to completion.
func (s *System) ExperimentContext(ctx context.Context, cfg ExperimentConfig) (*ExperimentResult, error) {
	if !cfg.Sim.Faults.Enabled() && s.faults.Enabled() {
		cfg.Sim.Faults = s.faults
	}
	if cfg.Sim.Trace == nil {
		cfg.Sim.Trace = s.tracer
	}
	return core.RunExperimentContext(ctx, s.Eval, s.Energy, s.Pred, cfg)
}

// RunSystem simulates a single named system over an explicit workload.
// Valid names: "base", "optimal", "energy-centric", "proposed",
// "proposed-noEadv".
func (s *System) RunSystem(name string, jobs []Job, sim SimConfig) (Metrics, error) {
	return s.RunSystemContext(context.Background(), name, jobs, sim)
}

// RunSystemContext is RunSystem honoring cancellation at every
// job-dispatch boundary.
func (s *System) RunSystemContext(ctx context.Context, name string, jobs []Job, sim SimConfig) (Metrics, error) {
	return s.RunOnDBContext(ctx, s.Eval, name, jobs, sim)
}

// RunOnDBContext is RunSystemContext over an explicit characterization DB
// instead of the System's canonical Eval set: job AppIDs index db, and the
// predictor reads db's ground truth where applicable. This is the serving
// tier's batch path — a request-supplied variant set is characterized on
// demand (see characterize.Tier) and scheduled without rebuilding the
// System. With the oracle predictor the oracle is re-bound to db, since
// the System's own oracle only knows the canonical records.
func (s *System) RunOnDBContext(ctx context.Context, db *DB, name string, jobs []Job, sim SimConfig) (Metrics, error) {
	if db == nil {
		return Metrics{}, fmt.Errorf("hetsched: nil characterization DB")
	}
	// Fill machine defaults field-wise so caller-set scheduling flags
	// (PriorityScheduling, Preemptive, SingleProfilingCore, Faults)
	// survive.
	def := core.DefaultSimConfig()
	if len(sim.CoreSizesKB) == 0 {
		sim.CoreSizesKB = def.CoreSizesKB
	}
	if sim.ReconfigCycles == 0 {
		sim.ReconfigCycles = def.ReconfigCycles
	}
	if sim.ProfilingCycles == 0 {
		sim.ProfilingCycles = def.ProfilingCycles
	}
	if !sim.Faults.Enabled() && s.faults.Enabled() {
		sim.Faults = s.faults
	}
	if sim.Trace == nil {
		sim.Trace = s.tracer
	}
	pol, needsPred, err := core.NewPolicy(name)
	if err != nil {
		return Metrics{}, err
	}
	var pred Predictor
	if needsPred {
		pred = s.predictorFor(db)
	}
	sim.CoreSizesKB = core.CoreSizesFor(name, sim.CoreSizesKB)
	simulator, err := core.NewSimulator(db, s.Energy, pol, pred, sim)
	if err != nil {
		return Metrics{}, err
	}
	return simulator.RunContext(ctx, jobs)
}

// predictorFor returns the predictor to schedule db with: the trained
// predictor (feature-based kinds generalize to any variant set), except
// the oracle, which must read ground truth from the DB actually being
// scheduled. For db == s.Eval this is exactly s.Pred.
func (s *System) predictorFor(db *DB) Predictor {
	if s.spec.IsSingle("oracle") && db != s.Eval {
		return core.OraclePredictor{DB: db}
	}
	return s.Pred
}

// Workload generates the paper-style uniform arrival stream over the whole
// suite at the given utilization.
func (s *System) Workload(arrivals int, utilization float64, seed int64) ([]Job, error) {
	ids := core.AllAppIDs(s.Eval)
	cores := len(core.DefaultSimConfig().CoreSizesKB)
	horizon, err := core.HorizonForUtilization(s.Eval, ids, arrivals, cores, utilization)
	if err != nil {
		return nil, err
	}
	return core.GenerateWorkload(core.WorkloadConfig{
		Arrivals:      arrivals,
		AppIDs:        ids,
		HorizonCycles: horizon,
		Seed:          seed,
	})
}

// WeightedWorkload generates an arrival stream whose application mix is
// given by kernel name (repeat a name to weight it), spread uniformly at
// the requested utilization — the knob domain examples use to model, e.g.,
// an engine-management-heavy automotive mix.
func (s *System) WeightedWorkload(kernels []string, arrivals int, utilization float64, seed int64) ([]Job, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("hetsched: empty kernel mix")
	}
	ids := make([]int, 0, len(kernels))
	for _, name := range kernels {
		rec, err := s.Eval.Find(name, eembc.DefaultParams())
		if err != nil {
			return nil, err
		}
		ids = append(ids, rec.ID)
	}
	cores := len(core.DefaultSimConfig().CoreSizesKB)
	horizon, err := core.HorizonForUtilization(s.Eval, ids, arrivals, cores, utilization)
	if err != nil {
		return nil, err
	}
	return core.GenerateWorkload(core.WorkloadConfig{
		Arrivals:      arrivals,
		AppIDs:        ids,
		HorizonCycles: horizon,
		Seed:          seed,
	})
}

// AssignPriorities gives jobs uniform random priorities in [0, levels) —
// the future-work real-time extension. Enable SimConfig.PriorityScheduling
// (and optionally Preemptive) to act on them.
func (s *System) AssignPriorities(jobs []Job, levels int, seed int64) {
	core.AssignPriorities(jobs, levels, seed)
}

// AssignDeadlines sets each job's deadline to arrival + slack × its
// best-configuration execution time. Misses are reported in
// Metrics.DeadlineMisses.
func (s *System) AssignDeadlines(jobs []Job, slack float64) error {
	return core.AssignDeadlines(jobs, s.Eval, slack)
}

// TuneKernel walks the Figure 5 tuning heuristic for one benchmark on a
// core of the given cache size, returning the configurations explored (in
// order) and the heuristic's final best configuration.
func (s *System) TuneKernel(kernel string, sizeKB int) (explored []CacheConfig, best CacheConfig, err error) {
	return s.TuneKernelContext(context.Background(), kernel, sizeKB)
}

// TuneKernelContext is TuneKernel honoring cancellation between tuning
// steps.
func (s *System) TuneKernelContext(ctx context.Context, kernel string, sizeKB int) (explored []CacheConfig, best CacheConfig, err error) {
	rec, err := s.Eval.Find(kernel, eembc.DefaultParams())
	if err != nil {
		return nil, CacheConfig{}, err
	}
	tn, err := tuner.New(sizeKB)
	if err != nil {
		return nil, CacheConfig{}, err
	}
	err = tuner.Walk(tn, func(cfg cache.Config) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cr, err := rec.Result(cfg)
		if err != nil {
			return 0, err
		}
		return cr.Energy.Total, nil
	})
	if err != nil {
		return nil, CacheConfig{}, err
	}
	best, _, _ = tn.Best()
	return tn.Explored(), best, nil
}

// PredictBestSize profiles nothing: it evaluates the trained predictor on a
// characterized benchmark's recorded features and returns the predicted and
// oracle best cache sizes.
func (s *System) PredictBestSize(kernel string) (predicted, oracle int, err error) {
	rec, err := s.Eval.Find(kernel, eembc.DefaultParams())
	if err != nil {
		return 0, 0, err
	}
	predicted, err = s.Pred.PredictSizeKB(rec.Features)
	if err != nil {
		return 0, 0, err
	}
	return predicted, rec.BestSizeKB(), nil
}

// trainMultiDomain builds the Section IV.D per-domain predictor: one
// bagged ensemble per application domain over its own augmented pool.
func trainMultiDomain(em *energy.Model, copts characterize.Options, opts Options, seed int64) (Predictor, error) {
	autoPool, _, err := characterize.CharacterizeCached(characterize.AugmentedVariants(), em, copts, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	var teleVariants []characterize.Variant
	for _, v := range characterize.AugmentedExtendedVariants() {
		switch v.Kernel {
		case "autcor", "conven", "fbital", "viterb":
			teleVariants = append(teleVariants, v)
		}
	}
	telePool, _, err := characterize.CharacterizeCached(teleVariants, em, copts, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	return ann.TrainMultiDomain(
		[]string{"automotive", "telecom"},
		map[string]*characterize.DB{"automotive": autoPool, "telecom": telePool},
		ann.PredictorConfig{Seed: seed, Workers: opts.Workers},
	)
}
