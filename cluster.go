package hetsched

import (
	"context"
	"fmt"

	"hetsched/internal/cluster"
	"hetsched/internal/core"
	"hetsched/internal/eembc"
	"hetsched/internal/trace"
)

// Cluster-facing re-exports: the two-level scheduler of internal/cluster
// behind the facade's vocabulary.
type (
	// SystemSpec declares one node's shape (core sizes and latencies);
	// parse with ParseSystemSpec ("4x8,16x2", "quad").
	SystemSpec = core.SystemSpec
	// ClusterConfig shapes a multi-node cluster run.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates one cluster run.
	ClusterResult = cluster.Result
	// ClusterNodeResult is one node's share of a cluster run.
	ClusterNodeResult = cluster.NodeResult
	// ScorerKind selects the cluster dispatcher's scoring strategy.
	ScorerKind = cluster.ScorerKind
)

// Cluster scoring strategies.
const (
	ScoreHybrid     = cluster.ScoreHybrid
	ScoreBalance    = cluster.ScoreBalance
	ScoreEnergy     = cluster.ScoreEnergy
	ScoreRoundRobin = cluster.ScoreRoundRobin
)

// Cluster trace event kinds (the dispatcher's routing audit).
const (
	TraceKindRoute = trace.KindRoute
	TraceKindSteal = trace.KindSteal
)

// DefaultSystemSpec returns the paper's Figure 1 quad-core node shape.
func DefaultSystemSpec() SystemSpec { return core.DefaultSystemSpec() }

// ParseSystemSpec parses one node shape: comma-separated core sizes in KB,
// NxS repetitions and named shapes — "2,4,8,8", "4x8,16x2", "quad".
func ParseSystemSpec(s string) (SystemSpec, error) { return core.ParseSystemSpec(s) }

// ParseClusterSpec parses the CLIs' shared -cluster flag vocabulary:
// node shapes joined by ';' with optional N* repetition — "16*quad",
// "8*4x8;8*16x2".
func ParseClusterSpec(s string) ([]SystemSpec, error) { return cluster.ParseClusterSpec(s) }

// FormatClusterSpec is the inverse of ParseClusterSpec.
func FormatClusterSpec(nodes []SystemSpec) string { return cluster.FormatClusterSpec(nodes) }

// ParseScorer parses a cluster scorer name
// ("hybrid"|"balance"|"energy"|"roundrobin").
func ParseScorer(s string) (ScorerKind, error) { return cluster.ParseScorer(s) }

// ScorerNames lists the valid cluster scorer names.
func ScorerNames() []string { return cluster.ScorerNames() }

// RunCluster schedules jobs across a multi-node cluster: the two-level
// dispatcher routes every arrival through the filter/score pipeline, then
// each node runs the named per-node system over its share. A ClusterConfig
// whose Faults/Trace are unset inherits the System's defaults, mirroring
// RunSystem.
func (s *System) RunCluster(cfg ClusterConfig, jobs []Job) (*ClusterResult, error) {
	return s.RunClusterContext(context.Background(), cfg, jobs)
}

// RunClusterContext is RunCluster honoring cancellation at every
// node-simulation boundary.
func (s *System) RunClusterContext(ctx context.Context, cfg ClusterConfig, jobs []Job) (*ClusterResult, error) {
	return s.RunClusterOnDBContext(ctx, s.Eval, cfg, jobs)
}

// RunClusterOnDBContext is RunClusterContext over an explicit
// characterization DB: job AppIDs index db, and the oracle predictor (if
// configured) is re-bound to it — the cluster half of the serving tier's
// batch path (see RunOnDBContext).
func (s *System) RunClusterOnDBContext(ctx context.Context, db *DB, cfg ClusterConfig, jobs []Job) (*ClusterResult, error) {
	if db == nil {
		return nil, fmt.Errorf("hetsched: nil characterization DB")
	}
	if !cfg.Faults.Enabled() && s.faults.Enabled() {
		cfg.Faults = s.faults
	}
	if cfg.Trace == nil {
		cfg.Trace = s.tracer
	}
	cl, err := cluster.New(db, s.Energy, s.predictorFor(db), cfg)
	if err != nil {
		return nil, err
	}
	return cl.RunContext(ctx, jobs)
}

// ClusterWorkload generates the paper-style arrival stream sized for a
// whole cluster: the utilization target spreads arrivals over the
// cluster's total core count, not a single node's. A non-empty kernels
// list weights the application mix by name (repeat a name to weight it);
// empty draws uniformly over the whole suite.
func (s *System) ClusterWorkload(nodes []SystemSpec, kernels []string, arrivals int, utilization float64, seed int64) ([]Job, error) {
	ids := core.AllAppIDs(s.Eval)
	if len(kernels) > 0 {
		ids = ids[:0]
		for _, name := range kernels {
			rec, err := s.Eval.Find(name, eembc.DefaultParams())
			if err != nil {
				return nil, err
			}
			ids = append(ids, rec.ID)
		}
	}
	cores := 0
	for _, spec := range nodes {
		cores += spec.Cores()
	}
	if cores == 0 {
		cores = len(core.DefaultSimConfig().CoreSizesKB)
	}
	horizon, err := core.HorizonForUtilization(s.Eval, ids, arrivals, cores, utilization)
	if err != nil {
		return nil, err
	}
	return core.GenerateWorkload(core.WorkloadConfig{
		Arrivals:      arrivals,
		AppIDs:        ids,
		HorizonCycles: horizon,
		Seed:          seed,
	})
}
