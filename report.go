package hetsched

import (
	"fmt"
	"sort"
	"strings"

	"hetsched/internal/core"
)

// FormatMetrics renders one system's metrics as a human-readable block.
func FormatMetrics(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s jobs=%d completed=%d\n", m.System, m.Jobs, m.Completed)
	fmt.Fprintf(&b, "  makespan        %15d cycles\n", m.Makespan)
	fmt.Fprintf(&b, "  turnaround      %15d cycles (p50 %d, p99 %d)\n",
		m.TurnaroundCycles, m.TurnaroundPercentile(50), m.TurnaroundPercentile(99))
	fmt.Fprintf(&b, "  idle energy     %15.0f nJ\n", m.IdleEnergy)
	fmt.Fprintf(&b, "  dynamic energy  %15.0f nJ\n", m.DynamicEnergy)
	fmt.Fprintf(&b, "  static energy   %15.0f nJ\n", m.StaticEnergy)
	fmt.Fprintf(&b, "  core energy     %15.0f nJ\n", m.CoreEnergy)
	fmt.Fprintf(&b, "  profiling       %15.0f nJ (%.3f%% of total)\n",
		m.ProfilingEnergy, 100*core.ProfilingOverheadFraction(m))
	fmt.Fprintf(&b, "  total energy    %15.0f nJ\n", m.TotalEnergy())
	fmt.Fprintf(&b, "  profiling runs %d, tuning runs %d, non-best placements %d, stalls %d (+%d resource), max queue %d\n",
		m.ProfilingRuns, m.TuningRuns, m.NonBestPlacements, m.StallDecisions, m.ResourceStalls, m.MaxQueueDepth)
	if m.FaultInjected {
		fmt.Fprintf(&b, "  faults: %d events, %d jobs re-dispatched, %d recoveries (MTTR %d cycles), downtime %d cycles\n",
			m.FaultEvents, m.JobsRedispatched, m.Recoveries, m.MTTRCycles, m.CoreDowntimeCycles)
		fmt.Fprintf(&b, "  fault energy    %15.0f nJ lost to killed executions; %d stuck reconfigs, %d fallback placements\n",
			m.FaultEnergyNJ, m.StuckReconfigs, m.FallbackPlacements)
	}
	if m.DeadlinesTotal > 0 {
		fmt.Fprintf(&b, "  deadlines: %d/%d missed (%.2f%%), %d slo-forced migrations (+%.0f nJ)\n",
			m.DeadlineMisses, m.DeadlinesTotal, 100*m.MissRate(), m.SLOMigrations, m.SLOEnergyPenaltyNJ)
		if len(m.ClassDeadlines) > 0 {
			var names []string
			for name := range m.ClassDeadlines {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				n, miss := m.ClassDeadlines[name], m.ClassDeadlineMisses[name]
				rate := 0.0
				if n > 0 {
					rate = 100 * float64(miss) / float64(n)
				}
				fmt.Fprintf(&b, "    class %-10s %d/%d missed (%.2f%%)\n", name, miss, n, rate)
			}
		}
	}
	return b.String()
}

// bar renders a terminal bar scaled so 1.0 spans barUnit characters,
// clamped to keep pathological ratios printable.
func bar(v float64) string {
	const barUnit = 24
	n := int(v*barUnit + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 3*barUnit {
		n = 3 * barUnit
	}
	return strings.Repeat("#", n)
}

// FormatFigure6 renders the Figure 6 rows: idle/dynamic/total energy
// normalized to the base system, with terminal bars for the total column
// (1.0 = the base system = 24 columns).
func FormatFigure6(res *ExperimentResult) string {
	var b strings.Builder
	b.WriteString("Figure 6 — energy normalized to the base system\n")
	fmt.Fprintf(&b, "  %-16s %8s %8s %8s  %s\n", "system", "idle", "dynamic", "total", "total (1.0 = base)")
	for _, r := range res.Figure6() {
		fmt.Fprintf(&b, "  %-16s %8.3f %8.3f %8.3f  %s\n", r.System, r.Idle, r.Dynamic, r.Total, bar(r.Total))
	}
	return b.String()
}

// FormatFigure7 renders the Figure 7 rows: cycles and energies normalized
// to the optimal system.
func FormatFigure7(res *ExperimentResult) string {
	var b strings.Builder
	b.WriteString("Figure 7 — cycles and energy normalized to the optimal system\n")
	fmt.Fprintf(&b, "  %-16s %8s %8s %8s %8s\n", "system", "cycles", "idle", "dynamic", "total")
	for _, r := range res.Figure7() {
		fmt.Fprintf(&b, "  %-16s %8.3f %8.3f %8.3f %8.3f\n", r.System, r.Cycles, r.Idle, r.Dynamic, r.Total)
	}
	return b.String()
}

// FormatFigures renders the complete experiment report: per-system metrics
// followed by both figures and the headline numbers.
func FormatFigures(res *ExperimentResult) string {
	var b strings.Builder
	for _, m := range res.Systems() {
		b.WriteString(FormatMetrics(m))
	}
	b.WriteString("\n")
	b.WriteString(FormatFigure6(res))
	b.WriteString("\n")
	b.WriteString(FormatFigure7(res))
	saving := 1 - res.Proposed.TotalEnergy()/res.Base.TotalEnergy()
	fmt.Fprintf(&b, "\nproposed system total-energy reduction vs base: %.1f%% (paper: 28%%)\n", 100*saving)
	return b.String()
}

// FormatPerApp renders a per-benchmark execution-energy table for one run:
// kernel, completed runs, attributed energy, and energy per run. Rows are
// ordered by total attributed energy.
func FormatPerApp(s *System, m Metrics) string {
	type row struct {
		name   string
		runs   int
		energy float64
	}
	var rows []row
	for app, e := range m.PerAppEnergy {
		name := fmt.Sprintf("app-%d", app)
		if rec, err := s.Eval.Record(app); err == nil {
			name = rec.Kernel
		}
		rows = append(rows, row{name: name, runs: m.PerAppRuns[app], energy: e})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].energy != rows[j].energy {
			return rows[i].energy > rows[j].energy
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "per-benchmark energy (%s)\n", m.System)
	fmt.Fprintf(&b, "  %-10s %8s %14s %14s\n", "kernel", "runs", "energy nJ", "nJ/run")
	for _, r := range rows {
		per := 0.0
		if r.runs > 0 {
			per = r.energy / float64(r.runs)
		}
		fmt.Fprintf(&b, "  %-10s %8d %14.0f %14.0f\n", r.name, r.runs, r.energy, per)
	}
	return b.String()
}

// FormatSchedule renders the first maxEvents entries of a recorded
// execution timeline (SimConfig.RecordSchedule), one line per execution.
// Fault events from the run's timeline are interleaved chronologically, and
// executions cut short by a crash carry a [failed] tag.
func FormatSchedule(s *System, m Metrics, maxEvents int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule timeline (%s): %d executions", m.System, len(m.Schedule))
	if m.FaultInjected {
		fmt.Fprintf(&b, ", %d fault events", len(m.FaultTimeline))
	}
	b.WriteString("\n")
	if maxEvents <= 0 || maxEvents > len(m.Schedule) {
		maxEvents = len(m.Schedule)
	}
	faults := m.FaultTimeline
	emitFaultsThrough := func(cycle uint64) {
		for len(faults) > 0 && faults[0].Cycle <= cycle {
			fmt.Fprintf(&b, "  core%d %12d !! %s\n", faults[0].Core, faults[0].Cycle, faults[0].Kind)
			faults = faults[1:]
		}
	}
	for _, e := range m.Schedule[:maxEvents] {
		emitFaultsThrough(e.Start)
		name := fmt.Sprintf("app-%d", e.AppID)
		if rec, err := s.Eval.Record(e.AppID); err == nil {
			name = rec.Kernel
		}
		tag := ""
		if e.Profiling {
			tag = " [profiling]"
		}
		if e.SLOForced {
			tag = " [slo-migrated]"
		}
		if e.Preempted {
			tag = " [preempted]"
		}
		if e.Failed {
			tag = " [failed]"
		}
		fmt.Fprintf(&b, "  core%d %12d..%-12d %-8s %s%s\n",
			e.CoreID, e.Start, e.End, name, e.Config, tag)
	}
	if maxEvents == len(m.Schedule) {
		emitFaultsThrough(m.Makespan)
	}
	if maxEvents < len(m.Schedule) {
		fmt.Fprintf(&b, "  ... %d more\n", len(m.Schedule)-maxEvents)
	}
	return b.String()
}

// FormatCluster renders a cluster run: the per-node routing and simulation
// table (shape, routed jobs, steal flows, completion, makespan, energy)
// followed by the cluster-wide totals.
func FormatCluster(res *ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster (%s, scorer=%s): %d nodes, %d cores, %d jobs\n",
		res.System, res.Scorer, len(res.Nodes), res.Cores(), res.Jobs)
	fmt.Fprintf(&b, "  %-5s %-14s %6s %7s %7s %7s %15s %16s\n",
		"node", "shape", "jobs", "in", "out", "maxq", "makespan", "energy nJ")
	for _, nr := range res.Nodes {
		fmt.Fprintf(&b, "  %-5d %-14s %6d %7d %7d %7d %15d %16.0f\n",
			nr.Node, nr.Spec.String(), nr.JobsRouted, nr.StolenIn, nr.StolenOut,
			nr.MaxPending, nr.Metrics.Makespan, nr.Metrics.TotalEnergy())
	}
	fmt.Fprintf(&b, "  completed %d/%d, steals %d, makespan %d cycles\n",
		res.Completed, res.Jobs, res.Steals, res.Makespan)
	fmt.Fprintf(&b, "  turnaround %d cycles (p50 %d, p99 %d)\n",
		res.TurnaroundCycles, res.TurnaroundPercentile(50), res.TurnaroundPercentile(99))
	fmt.Fprintf(&b, "  total energy %.0f nJ (idle %.0f, dynamic %.0f, static %.0f, core %.0f, profiling %.0f)\n",
		res.TotalEnergyNJ(), res.IdleEnergyNJ, res.DynamicEnergyNJ,
		res.StaticEnergyNJ, res.CoreEnergyNJ, res.ProfilingEnergyNJ)
	return b.String()
}

// FormatClusterSchedule renders the first maxEvents entries of the merged
// cluster execution timeline (ClusterConfig.RecordSchedule): every node's
// recorded placements interleaved chronologically with node-qualified core
// names ("n3/core1").
func FormatClusterSchedule(s *System, res *ClusterResult, maxEvents int) string {
	type row struct {
		node int
		e    core.PlacementEvent
	}
	var rows []row
	total := 0
	for _, nr := range res.Nodes {
		total += len(nr.Metrics.Schedule)
		for _, e := range nr.Metrics.Schedule {
			rows = append(rows, row{node: nr.Node, e: e})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].e.Start != rows[j].e.Start {
			return rows[i].e.Start < rows[j].e.Start
		}
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].e.CoreID < rows[j].e.CoreID
	})
	var b strings.Builder
	fmt.Fprintf(&b, "cluster schedule timeline (%s): %d executions across %d nodes\n",
		res.System, total, len(res.Nodes))
	if maxEvents <= 0 || maxEvents > len(rows) {
		maxEvents = len(rows)
	}
	for _, r := range rows[:maxEvents] {
		name := fmt.Sprintf("app-%d", r.e.AppID)
		if rec, err := s.Eval.Record(r.e.AppID); err == nil {
			name = rec.Kernel
		}
		tag := ""
		if r.e.Profiling {
			tag = " [profiling]"
		}
		if r.e.SLOForced {
			tag = " [slo-migrated]"
		}
		if r.e.Preempted {
			tag = " [preempted]"
		}
		if r.e.Failed {
			tag = " [failed]"
		}
		fmt.Fprintf(&b, "  n%d/core%d %12d..%-12d %-8s %s%s\n",
			r.node, r.e.CoreID, r.e.Start, r.e.End, name, r.e.Config, tag)
	}
	if maxEvents < len(rows) {
		fmt.Fprintf(&b, "  ... %d more\n", len(rows)-maxEvents)
	}
	return b.String()
}

// FormatDesignSpace renders Table 1.
func FormatDesignSpace() string {
	var b strings.Builder
	b.WriteString("Table 1 — cache configuration design space\n")
	for i, c := range DesignSpace() {
		fmt.Fprintf(&b, "  %-12s", c)
		if (i+1)%3 == 0 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
